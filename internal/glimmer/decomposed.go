package glimmer

import (
	"crypto/sha256"
	"fmt"

	"glimmers/internal/attest"
	"glimmers/internal/fixed"
	"glimmers/internal/predicate"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// The decomposed Glimmer: §3 notes that "to increase ease of verification,
// the Glimmer can be decomposed so that each component runs in its own
// enclave. Naturally, communication between components must now also be
// secured." This file implements that configuration: three enclaves —
// Validation, Blinding, Signing — each small enough to verify in isolation,
// chained by local-attestation-secured channels. The host shuttles opaque
// records between them and learns nothing; tampering with a record breaks
// the chain.
//
// Trust between components is anchored in the binary signer (the MRSIGNER
// analogue): all three binaries carry the same vendor signature, and each
// component only links with a same-signer enclave declaring the expected
// role. Experiment E6 measures what this buys and costs: three times the
// enclaves, about three times the transitions per contribution.

// Role identifies a component in the decomposed pipeline.
type Role byte

// Pipeline roles, in data-flow order.
const (
	RoleValidator Role = 1
	RoleBlinder   Role = 2
	RoleSigner    Role = 3
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleValidator:
		return "validator"
	case RoleBlinder:
		return "blinder"
	case RoleSigner:
		return "signer"
	}
	return fmt.Sprintf("role(%d)", byte(r))
}

// Object-store keys for links.
const (
	objLinkUp     = "link-up"     // session with the upstream component
	objLinkDown   = "link-down"   // session with the downstream component
	objLinkDH     = "link-dh"     // in-flight link handshake state
	objRole       = "role"        //
	objExpectUp   = "expect-up"   // role required of the upstream peer
	objExpectDown = "expect-down" // role required of the downstream peer
)

func linkBinding(role Role, dhPub []byte) [48]byte {
	h := sha256.New()
	h.Write([]byte("glimmers/link/v1\x00"))
	h.Write([]byte{byte(role)})
	h.Write(dhPub)
	var out [48]byte
	h.Sum(out[:0])
	out[32] = byte(role)
	return out
}

func encodeLinkMsg(role Role, dhPub []byte, report tee.Report) []byte {
	w := wire.NewWriter()
	w.Byte(byte(role))
	w.Bytes(dhPub)
	w.Bytes(report.Measurement[:])
	w.Bytes(report.Signer[:])
	w.Bytes(report.Platform[:])
	w.Bytes(report.Data[:])
	w.Bytes(report.MAC[:])
	return w.Finish()
}

func decodeLinkMsg(data []byte) (Role, []byte, tee.Report, error) {
	r := wire.NewReader(data)
	role := Role(r.Byte())
	dhPub := r.Bytes()
	var rep tee.Report
	fields := [][]byte{r.Bytes(), r.Bytes(), r.Bytes(), r.Bytes(), r.Bytes()}
	if err := r.Done(); err != nil {
		return 0, nil, rep, fmt.Errorf("glimmer: link message: %w", err)
	}
	if len(fields[0]) != 32 || len(fields[1]) != 32 || len(fields[2]) != 16 ||
		len(fields[3]) != tee.ReportDataSize || len(fields[4]) != 32 {
		return 0, nil, rep, fmt.Errorf("glimmer: link message field widths")
	}
	copy(rep.Measurement[:], fields[0])
	copy(rep.Signer[:], fields[1])
	copy(rep.Platform[:], fields[2])
	copy(rep.Data[:], fields[3])
	copy(rep.MAC[:], fields[4])
	return role, dhPub, rep, nil
}

// verifyLinkPeer checks a link message came from a genuine same-signer
// enclave declaring the expected role, with the DH value bound into the
// report.
func verifyLinkPeer(env *tee.Env, expect Role, role Role, dhPub []byte, rep tee.Report) error {
	if role != expect {
		return fmt.Errorf("%w: peer declares role %s, want %s", ErrState, role, expect)
	}
	if !env.VerifyReport(rep) {
		return fmt.Errorf("%w: peer report invalid", ErrState)
	}
	if rep.Signer != env.SignerID() || rep.Signer == (tee.SignerID{}) {
		return fmt.Errorf("%w: peer not signed by our vendor", ErrState)
	}
	want := linkBinding(role, dhPub)
	var got [48]byte
	copy(got[:], rep.Data[:48])
	if got != want {
		return fmt.Errorf("%w: link binding mismatch", ErrState)
	}
	return nil
}

func linkTranscript(initPub, respPub []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("glimmers/link-transcript/v1\x00"))
	h.Write(initPub)
	h.Write(respPub)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ecallLinkInit runs on the upstream component: it offers a DH value bound
// into a local report.
func ecallLinkInit(env *tee.Env, _ []byte) ([]byte, error) {
	roleV, _ := env.GetObject(objRole)
	role := roleV.(Role)
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, fmt.Errorf("glimmer: link init: %w", err)
	}
	if err := env.PutObject(objLinkDH, dh); err != nil {
		return nil, err
	}
	binding := linkBinding(role, dh.PublicBytes())
	rep, err := env.NewReport(binding[:])
	if err != nil {
		return nil, err
	}
	return encodeLinkMsg(role, dh.PublicBytes(), rep), nil
}

// ecallLinkAccept runs on the downstream component: it verifies the
// upstream offer and answers with its own bound DH value.
func ecallLinkAccept(env *tee.Env, input []byte) ([]byte, error) {
	roleV, _ := env.GetObject(objRole)
	role := roleV.(Role)
	expectV, ok := env.GetObject(objExpectUp)
	if !ok {
		return nil, fmt.Errorf("%w: component has no upstream", ErrState)
	}
	peerRole, peerPub, peerRep, err := decodeLinkMsg(input)
	if err != nil {
		return nil, err
	}
	if err := verifyLinkPeer(env, expectV.(Role), peerRole, peerPub, peerRep); err != nil {
		return nil, err
	}
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, fmt.Errorf("glimmer: link accept: %w", err)
	}
	shared, err := dh.Shared(peerPub)
	if err != nil {
		return nil, err
	}
	session := attest.NewSessionFromSecret(shared, linkTranscript(peerPub, dh.PublicBytes()), false)
	if err := env.PutObject(objLinkUp, session); err != nil {
		return nil, err
	}
	binding := linkBinding(role, dh.PublicBytes())
	rep, err := env.NewReport(binding[:])
	if err != nil {
		return nil, err
	}
	return encodeLinkMsg(role, dh.PublicBytes(), rep), nil
}

// ecallLinkFinish runs on the upstream component with the downstream answer.
func ecallLinkFinish(env *tee.Env, input []byte) ([]byte, error) {
	expectV, ok := env.GetObject(objExpectDown)
	if !ok {
		return nil, fmt.Errorf("%w: component has no downstream", ErrState)
	}
	dhV, ok := env.GetObject(objLinkDH)
	if !ok {
		return nil, fmt.Errorf("%w: no link handshake in progress", ErrState)
	}
	dh := dhV.(*xcrypto.DHKey)
	peerRole, peerPub, peerRep, err := decodeLinkMsg(input)
	if err != nil {
		return nil, err
	}
	if err := verifyLinkPeer(env, expectV.(Role), peerRole, peerPub, peerRep); err != nil {
		return nil, err
	}
	shared, err := dh.Shared(peerPub)
	if err != nil {
		return nil, err
	}
	session := attest.NewSessionFromSecret(shared, linkTranscript(dh.PublicBytes(), peerPub), true)
	env.DeleteObject(objLinkDH)
	if err := env.PutObject(objLinkDown, session); err != nil {
		return nil, err
	}
	return nil, nil
}

func linkSession(env *tee.Env, key string) (*attest.Session, error) {
	v, ok := env.GetObject(key)
	if !ok {
		return nil, fmt.Errorf("%w: component link not established", ErrState)
	}
	return v.(*attest.Session), nil
}

// stage payload between components: {round, confidence, vector bits}.
func encodeStage(round uint64, confidence int64, bits []uint64) []byte {
	return wire.NewWriter().Uint64(round).Uint64(uint64(confidence)).Uint64s(bits).Finish()
}

func decodeStage(data []byte) (uint64, int64, []uint64, error) {
	r := wire.NewReader(data)
	round := r.Uint64()
	confidence := int64(r.Uint64())
	bits := r.Uint64s()
	if err := r.Done(); err != nil {
		return 0, 0, nil, fmt.Errorf("glimmer: stage payload: %w", err)
	}
	return round, confidence, bits, nil
}

// ecallValidate is the validator component's pipeline stage.
func ecallValidate(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	req, err := DecodeContribution(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if len(req.Contribution) != cfg.Dim {
		return nil, fmt.Errorf("%w: contribution dim %d != %d", ErrBadRequest, len(req.Contribution), cfg.Dim)
	}
	pv, ok := env.GetObject(objPredicate)
	if !ok {
		return nil, ErrNotProvisioned
	}
	av, ok := env.GetObject(objAnalysis)
	if !ok {
		return nil, ErrNotProvisioned
	}
	prog, analysis := pv.(*predicate.Program), av.(*predicate.Analysis)

	contribution := make([]int64, len(req.Contribution))
	for i, u := range req.Contribution {
		contribution[i] = int64(u)
	}
	private := make([]int64, len(req.Private))
	for i, u := range req.Private {
		private[i] = int64(u)
	}
	res, err := predicate.Run(prog, contribution, private, &predicate.Options{MaxSteps: analysis.CostBound})
	if err != nil || res.Verdict < cfg.minVerdict() {
		env.CounterIncrement("rejected")
		return nil, ErrRejected
	}
	down, err := linkSession(env, objLinkDown)
	if err != nil {
		return nil, err
	}
	return down.Send(encodeStage(req.Round, res.Verdict, req.Contribution))
}

// ecallBlind is the blinder component's pipeline stage.
func ecallBlind(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	up, err := linkSession(env, objLinkUp)
	if err != nil {
		return nil, err
	}
	plaintext, err := up.Recv(input)
	if err != nil {
		return nil, fmt.Errorf("%w: upstream record: %v", ErrBadRequest, err)
	}
	round, confidence, bits, err := decodeStage(plaintext)
	if err != nil {
		return nil, err
	}
	vec := make(fixed.Vector, len(bits))
	for i, b := range bits {
		vec[i] = fixed.Ring(b)
	}
	blinded, err := applyBlinding(env, cfg, vec, round)
	if err != nil {
		return nil, err
	}
	down, err := linkSession(env, objLinkDown)
	if err != nil {
		return nil, err
	}
	return down.Send(encodeStage(round, confidence, VectorToBits(blinded)))
}

// ecallSign is the signer component's pipeline stage.
func ecallSign(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	up, err := linkSession(env, objLinkUp)
	if err != nil {
		return nil, err
	}
	plaintext, err := up.Recv(input)
	if err != nil {
		return nil, fmt.Errorf("%w: upstream record: %v", ErrBadRequest, err)
	}
	round, confidence, bits, err := decodeStage(plaintext)
	if err != nil {
		return nil, err
	}
	kv, ok := env.GetObject(objSignKey)
	if !ok {
		return nil, ErrNotProvisioned
	}
	signKey := kv.(*xcrypto.SigningKey)
	blinded := make(fixed.Vector, len(bits))
	for i, b := range bits {
		blinded[i] = fixed.Ring(b)
	}
	sc := SignedContribution{
		ServiceName: cfg.ServiceName,
		Round:       round,
		Measurement: env.Measurement(),
		Blinded:     blinded,
		Confidence:  confidence,
	}
	sig, err := signKey.Sign(sc.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("glimmer: signing: %w", err)
	}
	sc.Signature = sig
	env.CounterIncrement("accepted")
	return EncodeSignedContribution(sc), nil
}
