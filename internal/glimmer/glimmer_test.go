package glimmer_test

import (
	"bytes"
	"errors"
	"testing"

	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

const dim = 4

// serialPipeline is the strictly serial aggregation baseline (one worker,
// one shard) these tests collect into.
func serialPipeline(svc *service.Service, dim int, round uint64) *service.Pipeline {
	return service.NewPipeline(service.PipelineConfig{
		ServiceName: svc.Name(),
		Verify:      svc.ContributionVerifyKey(),
		Dim:         dim,
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
}

func newWorld(t *testing.T) (*tee.AttestationService, *tee.Platform, *service.Service) {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New("nextwordpredictive.com", as.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("weights-in-unit-range", dim)); err != nil {
		t.Fatal(err)
	}
	return as, platform, svc
}

func provisionedDevice(t *testing.T, platform *tee.Platform, svc *service.Service, mode glimmer.Mode, masks map[uint64][]uint64) *glimmer.Device {
	t.Helper()
	cfg, err := svc.GlimmerConfig(dim, mode, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(dev.Measurement())
	payload, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	payload.Masks = masks
	if err := svc.Provision(dev, payload); err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestSingleEnclaveLifecycle(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)

	honest := fixed.FromFloats([]float64{0.1, 0.9, 0.5, 0.0})
	sc, err := dev.Contribute(1, honest, nil)
	if err != nil {
		t.Fatalf("honest contribution refused: %v", err)
	}
	if sc.ServiceName != svc.Name() || sc.Round != 1 {
		t.Fatalf("metadata: %+v", sc)
	}
	if sc.Measurement != dev.Measurement() {
		t.Fatal("contribution does not carry the glimmer measurement")
	}
	// ModeNone: payload is the raw validated contribution.
	for i := range honest {
		if sc.Blinded[i] != honest[i] {
			t.Fatal("ModeNone altered the contribution")
		}
	}
	if !svc.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature) {
		t.Fatal("service cannot verify the glimmer signature")
	}
}

func TestGlimmerBlocksThe538Attack(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)

	malicious := fixed.FromFloats([]float64{0.1, 538, 0.5, 0.0})
	_, err := dev.Contribute(1, malicious, nil)
	if !errors.Is(err, glimmer.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	// The refusal is generic: it must not leak which element failed.
	if err.Error() != glimmer.ErrRejected.Error() {
		t.Fatalf("refusal leaks detail: %q", err)
	}
}

func TestContributeRequiresProvisioning(t *testing.T) {
	_, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.Contribute(1, fixed.NewVector(dim), nil)
	if !errors.Is(err, glimmer.ErrNotProvisioned) {
		t.Fatalf("err = %v, want ErrNotProvisioned", err)
	}
}

func TestContributeRejectsWrongDimension(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	_, err := dev.Contribute(1, fixed.NewVector(dim+1), nil)
	if !errors.Is(err, glimmer.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestServiceRefusesUnvettedGlimmer(t *testing.T) {
	_, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Vet a *different* measurement; this device stays unvetted.
	svc.Vet(tee.Measurement{0xAA})
	payload, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Provision(dev, payload); !errors.Is(err, tee.ErrQuoteMeasurement) {
		t.Fatalf("err = %v, want ErrQuoteMeasurement", err)
	}
}

func TestGlimmerRefusesImposterService(t *testing.T) {
	// The Glimmer's config embeds the real service key; an imposter with
	// the attestation root but a different identity cannot complete the
	// handshake.
	as, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := service.New(svc.Name(), as.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := imposter.SetPredicate(predicate.UnitRangeCheck("p", dim)); err != nil {
		t.Fatal(err)
	}
	imposter.Vet(dev.Measurement())
	payload, err := imposter.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := imposter.Provision(dev, payload); err == nil {
		t.Fatal("imposter service provisioned the glimmer")
	}
}

func TestGlimmerRefusesPolicyViolatingPredicate(t *testing.T) {
	_, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(dev.Measurement())
	// A predicate with two declassification sites violates the measured
	// policy (MaxDeclassSites = 1).
	leaky := predicate.NewBuilder("leaky", 0).
		LoadC(0).Declass().Pop().
		LoadC(1).Declass().Verdict().
		MustBuild()
	if _, err := predicate.Verify(leaky); err != nil {
		t.Fatalf("test predicate should verify: %v", err)
	}
	payload, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	payload.Predicate = predicate.Encode(leaky)
	err = svc.Provision(dev, payload)
	if err == nil || !errors.Is(unwrapECall(err), glimmer.ErrPolicy) {
		t.Fatalf("err = %v, want ErrPolicy", err)
	}
}

// unwrapECall digs the glimmer error out of service wrapping.
func unwrapECall(err error) error { return err }

func TestHostCannotTamperWithSignedContribution(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	sc, err := dev.Contribute(3, fixed.FromFloats([]float64{0.1, 0.2, 0.3, 0.4}), nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := serialPipeline(svc, dim, 3)
	agg.Vet(dev.Measurement())

	// Host flips one blinded element before forwarding.
	tampered := sc
	tampered.Blinded = sc.Blinded.Clone()
	tampered.Blinded[0]++
	if err := agg.Add(glimmer.EncodeSignedContribution(tampered)); !errors.Is(err, service.ErrBadSignature) {
		t.Fatalf("tampered value: err = %v, want ErrBadSignature", err)
	}
	// Host rewrites the round.
	tampered = sc
	tampered.Round = 4
	err = agg.Add(glimmer.EncodeSignedContribution(tampered))
	if !errors.Is(err, service.ErrWrongRound) && !errors.Is(err, service.ErrBadSignature) {
		t.Fatalf("tampered round: err = %v", err)
	}
	// The genuine message still lands.
	if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
		t.Fatalf("genuine contribution refused: %v", err)
	}
	// And replaying it is refused.
	if err := agg.Add(glimmer.EncodeSignedContribution(sc)); !errors.Is(err, service.ErrDuplicate) {
		t.Fatalf("replay: err = %v, want ErrDuplicate", err)
	}
}

func TestDealerModeCohortAggregation(t *testing.T) {
	// Figure 1c with Glimmers: N devices, dealer masks, exact aggregate,
	// individual blinded values useless to the service.
	const n = 5
	const round = uint64(7)
	_, platform, svc := newWorld(t)

	masks, err := blind.ZeroSumMasks([]byte("round-7"), n, dim)
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*glimmer.Device, n)
	for i := range devices {
		devices[i] = provisionedDevice(t, platform, svc, glimmer.ModeDealer,
			map[uint64][]uint64{round: glimmer.VectorToBits(masks[i])})
	}

	contributions := make([]fixed.Vector, n)
	trueSum := fixed.NewVector(dim)
	agg := serialPipeline(svc, dim, round)
	prg := xcrypto.NewPRG([]byte("cohort"))
	for i, dev := range devices {
		agg.Vet(dev.Measurement())
		c := fixed.NewVector(dim)
		for d := range c {
			c[d] = fixed.FromFloat(prg.Float64())
		}
		contributions[i] = c
		trueSum.AddInPlace(c)
		sc, err := dev.Contribute(round, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Blinded must differ from the raw contribution.
		same := true
		for d := range c {
			if sc.Blinded[d] != c[d] {
				same = false
			}
		}
		if same {
			t.Fatal("dealer mode did not blind the contribution")
		}
		if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
			t.Fatal(err)
		}
	}
	got := agg.Sum()
	for d := range trueSum {
		if got[d] != trueSum[d] {
			t.Fatalf("aggregate mismatch at dim %d", d)
		}
	}
}

func TestDealerMaskIsSingleUse(t *testing.T) {
	const round = uint64(1)
	_, platform, svc := newWorld(t)
	masks, err := blind.ZeroSumMasks([]byte("r"), 2, dim)
	if err != nil {
		t.Fatal(err)
	}
	dev := provisionedDevice(t, platform, svc, glimmer.ModeDealer,
		map[uint64][]uint64{round: glimmer.VectorToBits(masks[0])})
	c := fixed.FromFloats([]float64{0.1, 0.2, 0.3, 0.4})
	if _, err := dev.Contribute(round, c, nil); err != nil {
		t.Fatal(err)
	}
	// Submitting again for the same round would reuse the mask; the
	// glimmer refuses.
	if _, err := dev.Contribute(round, c, nil); !errors.Is(err, glimmer.ErrNotProvisioned) {
		t.Fatalf("mask reuse: err = %v, want ErrNotProvisioned", err)
	}
}

func TestPairwiseModeCohortAggregation(t *testing.T) {
	const n = 4
	const round = uint64(3)
	_, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModePairwise, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	// Load devices and gather the enclave-held pairwise keys.
	devices := make([]*glimmer.Device, n)
	roster := make([][]byte, n)
	for i := range devices {
		dev, err := glimmer.NewDevice(platform, cfg)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
		svc.Vet(dev.Measurement())
		pub, err := dev.PairwisePub()
		if err != nil {
			t.Fatal(err)
		}
		roster[i] = pub
	}
	base, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	for i, dev := range devices {
		payload := base
		payload.PartyIndex = uint32(i)
		payload.Roster = roster
		if err := svc.Provision(dev, payload); err != nil {
			t.Fatal(err)
		}
	}

	agg := serialPipeline(svc, dim, round)
	trueSum := fixed.NewVector(dim)
	prg := xcrypto.NewPRG([]byte("pairwise"))
	for _, dev := range devices {
		agg.Vet(dev.Measurement())
		c := fixed.NewVector(dim)
		for d := range c {
			c[d] = fixed.FromFloat(prg.Float64())
		}
		trueSum.AddInPlace(c)
		sc, err := dev.Contribute(round, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
			t.Fatal(err)
		}
	}
	got := agg.Sum()
	for d := range trueSum {
		if got[d] != trueSum[d] {
			t.Fatalf("pairwise aggregate mismatch at dim %d", d)
		}
	}
}

func TestCrossCheckCorroboration(t *testing.T) {
	// §3's invasive validation: the predicate compares the claimed
	// contribution against private context (keyboard corroboration data).
	_, platform, svc := newWorld(t)
	if err := svc.SetPredicate(predicate.CrossCheck("corroborate", dim, 2)); err != nil {
		t.Fatal(err)
	}
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	claimed := fixed.FromFloats([]float64{0.5, 0.25, 0.25, 0.0})
	observed := make([]int64, dim)
	for i, r := range claimed {
		observed[i] = int64(r)
	}
	if _, err := dev.Contribute(1, claimed, observed); err != nil {
		t.Fatalf("corroborated contribution refused: %v", err)
	}
	// Fabricated claim far from observed behaviour is refused.
	fabricated := fixed.FromFloats([]float64{0.9, 0.05, 0.05, 0.0})
	if _, err := dev.Contribute(2, fabricated, observed); !errors.Is(err, glimmer.ErrRejected) {
		t.Fatalf("fabricated claim: err = %v, want ErrRejected", err)
	}
}

func TestDetectFlowWithBotGate(t *testing.T) {
	_, platform, svc := newWorld(t)
	// Detector: score = 2*s0 + 3*s1 >= 10.
	if err := svc.SetPredicate(predicate.ThresholdScore("bot-detector", []int64{2, 3}, 10)); err != nil {
		t.Fatal(err)
	}
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	gate := service.NewBotGate(svc.Name(), svc.ContributionVerifyKey())

	challenge, err := gate.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := dev.Detect(challenge, []int64{2, 2}) // score 10 -> human
	if err != nil {
		t.Fatal(err)
	}
	human, err := gate.CheckVerdict(glimmer.EncodeVerdict(verdict))
	if err != nil {
		t.Fatal(err)
	}
	if !human {
		t.Fatal("human signals classified as bot")
	}
	// Challenge is consumed; replay refused.
	if _, err := gate.CheckVerdict(glimmer.EncodeVerdict(verdict)); !errors.Is(err, service.ErrUnknownChallenge) {
		t.Fatalf("replay: err = %v, want ErrUnknownChallenge", err)
	}

	// Bot signals produce the other bit.
	challenge2, err := gate.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	verdict2, err := dev.Detect(challenge2, []int64{0, 1}) // score 3 -> bot
	if err != nil {
		t.Fatal(err)
	}
	human2, err := gate.CheckVerdict(glimmer.EncodeVerdict(verdict2))
	if err != nil {
		t.Fatal(err)
	}
	if human2 {
		t.Fatal("bot signals classified as human")
	}
}

func TestDetectVerdictTamperingCaught(t *testing.T) {
	_, platform, svc := newWorld(t)
	if err := svc.SetPredicate(predicate.ThresholdScore("d", []int64{1}, 1)); err != nil {
		t.Fatal(err)
	}
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	gate := service.NewBotGate(svc.Name(), svc.ContributionVerifyKey())
	challenge, err := gate.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := dev.Detect(challenge, []int64{0}) // bot
	if err != nil {
		t.Fatal(err)
	}
	// A bot flips its verdict bit in transit.
	forged := verdict
	forged.Human = true
	if _, err := gate.CheckVerdict(glimmer.EncodeVerdict(forged)); !errors.Is(err, service.ErrVerdictSignature) {
		t.Fatalf("forged bit: err = %v, want ErrVerdictSignature", err)
	}
}

func TestDecomposedPipeline(t *testing.T) {
	_, platform, svc := newWorld(t)
	vendor, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDecomposedDevice(platform, cfg, vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*glimmer.Component{dev.Validator(), dev.Blinder(), dev.Signer()} {
		svc.Vet(c.Measurement())
	}
	masks, err := blind.ZeroSumMasks([]byte("d"), 2, dim)
	if err != nil {
		t.Fatal(err)
	}
	base, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	valPayload := glimmer.ProvisionPayload{SigningKey: base.SigningKey, Predicate: base.Predicate}
	if err := svc.Provision(dev.Validator(), valPayload); err != nil {
		t.Fatalf("provision validator: %v", err)
	}
	blindPayload := glimmer.ProvisionPayload{
		SigningKey: base.SigningKey,
		Predicate:  base.Predicate,
		Masks:      map[uint64][]uint64{1: glimmer.VectorToBits(masks[0])},
	}
	if err := svc.Provision(dev.Blinder(), blindPayload); err != nil {
		t.Fatalf("provision blinder: %v", err)
	}
	if err := svc.Provision(dev.Signer(), base); err != nil {
		t.Fatalf("provision signer: %v", err)
	}

	honest := fixed.FromFloats([]float64{0.2, 0.4, 0.6, 0.8})
	sc, err := dev.Contribute(1, honest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !svc.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature) {
		t.Fatal("decomposed contribution signature invalid")
	}
	if sc.Measurement != dev.SignerMeasurement() {
		t.Fatal("contribution should carry the signer measurement")
	}
	// Unmasking recovers the contribution exactly.
	unmasked, err := blind.Remove(sc.Blinded, masks[0])
	if err != nil {
		t.Fatal(err)
	}
	for d := range honest {
		if unmasked[d] != honest[d] {
			t.Fatal("decomposed blinding corrupted the contribution")
		}
	}
	// The 538 attack dies at the validator; nothing reaches the signer.
	if _, err := dev.Contribute(1, fixed.FromFloats([]float64{538, 0, 0, 0}), nil); !errors.Is(err, glimmer.ErrRejected) {
		t.Fatalf("538 through decomposed pipeline: %v", err)
	}
}

func TestDecomposedHostTamperingBetweenComponents(t *testing.T) {
	_, platform, svc := newWorld(t)
	vendor, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDecomposedDevice(platform, cfg, vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*glimmer.Component{dev.Validator(), dev.Blinder(), dev.Signer()} {
		svc.Vet(c.Measurement())
	}
	base, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Provision(dev.Validator(), base); err != nil {
		t.Fatal(err)
	}
	if err := svc.Provision(dev.Blinder(), base); err != nil {
		t.Fatal(err)
	}
	if err := svc.Provision(dev.Signer(), base); err != nil {
		t.Fatal(err)
	}

	req := glimmer.ContributionRequest{
		Round:        1,
		Contribution: glimmer.VectorToBits(fixed.FromFloats([]float64{0.1, 0.2, 0.3, 0.4})),
	}
	validated, err := dev.Validator().Enclave().Call("validate", glimmer.EncodeContribution(req))
	if err != nil {
		t.Fatal(err)
	}
	// Host flips a byte of the validator→blinder record: the blinder must
	// refuse it.
	tampered := append([]byte(nil), validated...)
	tampered[len(tampered)-1] ^= 1
	if _, err := dev.Blinder().Enclave().Call("blind", tampered); err == nil {
		t.Fatal("blinder accepted a tampered record")
	}
	// A record cannot skip the blinder and go straight to the signer: the
	// signer shares no channel with the validator.
	if _, err := dev.Signer().Enclave().Call("sign", validated); err == nil {
		t.Fatal("signer accepted a validator record directly")
	}
}

func TestDecomposedRejectsForeignVendor(t *testing.T) {
	// Components signed by different vendors must refuse to link.
	_, platform, svc := newWorld(t)
	vendorA, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	vendorB, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	validator, err := platform.Load(glimmer.BuildComponentBinary(cfg, glimmer.RoleValidator, vendorA.Public()))
	if err != nil {
		t.Fatal(err)
	}
	blinder, err := platform.Load(glimmer.BuildComponentBinary(cfg, glimmer.RoleBlinder, vendorB.Public()))
	if err != nil {
		t.Fatal(err)
	}
	offer, err := validator.Call("link-init", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blinder.Call("link-accept", offer); err == nil {
		t.Fatal("cross-vendor link accepted")
	}
}

func TestDecomposedCostsMoreTransitions(t *testing.T) {
	// E6's shape: one contribution costs 1 ECALL on the single enclave,
	// 3 on the decomposed pipeline.
	_, platform, svc := newWorld(t)
	single := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	vendor, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	decomposed, err := glimmer.NewDecomposedDevice(platform, cfg, vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*glimmer.Component{decomposed.Validator(), decomposed.Blinder(), decomposed.Signer()} {
		svc.Vet(c.Measurement())
	}
	base, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*glimmer.Component{decomposed.Validator(), decomposed.Blinder(), decomposed.Signer()} {
		if err := svc.Provision(c, base); err != nil {
			t.Fatal(err)
		}
	}

	c := fixed.FromFloats([]float64{0.1, 0.2, 0.3, 0.4})
	singleBefore := single.Stats().ECalls
	if _, err := single.Contribute(1, c, nil); err != nil {
		t.Fatal(err)
	}
	singleCost := single.Stats().ECalls - singleBefore

	decompBefore := decomposed.Stats().ECalls
	if _, err := decomposed.Contribute(1, c, nil); err != nil {
		t.Fatal(err)
	}
	decompCost := decomposed.Stats().ECalls - decompBefore

	if singleCost != 1 {
		t.Errorf("single-enclave contribution cost %d ECALLs, want 1", singleCost)
	}
	if decompCost != 3 {
		t.Errorf("decomposed contribution cost %d ECALLs, want 3", decompCost)
	}
}

func TestProvisionRecordCannotBeReplayed(t *testing.T) {
	// The session's sequence numbers make the provisioning record one-shot:
	// a host replaying it to re-trigger installation fails.
	_, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(dev.Measurement())
	payload, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Provision(dev, payload); err != nil {
		t.Fatal(err)
	}
	// A fresh provisioning record from scratch would need a new handshake;
	// replaying arbitrary bytes into the provision ECALL must fail cleanly.
	if _, err := dev.Provision(bytes.Repeat([]byte{7}, 64)); err == nil {
		t.Fatal("garbage provisioning record accepted")
	}
}

func TestRejectionCounterAdvances(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	bad := fixed.FromFloats([]float64{538, 0, 0, 0})
	for i := 0; i < 3; i++ {
		_, _ = dev.Contribute(uint64(i), bad, nil)
	}
	// The rejection counter is platform state; its existence is observable
	// through monotonic counters surviving enclave destruction. We can at
	// least confirm contribute still works after rejections.
	good := fixed.FromFloats([]float64{0.1, 0.1, 0.1, 0.1})
	if _, err := dev.Contribute(9, good, nil); err != nil {
		t.Fatalf("glimmer wedged after rejections: %v", err)
	}
}
