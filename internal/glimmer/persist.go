package glimmer

import (
	"fmt"

	"glimmers/internal/predicate"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Sealed persistence (§3): "The signing key used can be provided by the
// service, and sealed (using the SGX sealing facility) to the Glimmer code,
// so that it is only available to instances of Glimmer enclaves."
//
// The "export-state" ECALL seals the provisioned signing key and predicate
// to the enclave's measurement; the host stores the opaque blob and hands
// it to a freshly loaded enclave's "restore-state" ECALL after a reboot —
// no service round trip required. The blob is useless to the host, to
// other binaries, and on other platforms; rollback across re-provisionings
// is caught by a monotonic counter baked into the sealed payload.

const sealEpochCounter = "seal-epoch"

// sealedStateAAD binds sealed blobs to their purpose and format version.
var sealedStateAAD = []byte("glimmers/sealed-state/v1")

// ecallExportState seals the provisioned state to the Glimmer measurement.
func ecallExportState(env *tee.Env, _ []byte) ([]byte, error) {
	prog, analysis, signKey, err := provisionedState(env)
	if err != nil {
		return nil, err
	}
	_ = analysis // re-derived on restore; the predicate is re-verified
	keyDER, err := signKey.Marshal()
	if err != nil {
		return nil, fmt.Errorf("glimmer: export: %w", err)
	}
	// A fresh epoch for every export: restoring an older blob than the
	// newest export fails, bounding rollback.
	epoch := env.CounterIncrement(sealEpochCounter)
	payload := wire.NewWriter().
		Uint64(epoch).
		Bytes(keyDER).
		Bytes(predicate.Encode(prog)).
		Finish()
	return env.Seal(payload, sealedStateAAD, tee.SealToMeasurement)
}

// ecallRestoreState reinstalls state from a sealed blob. The predicate is
// re-verified against the measured policy — sealing protects
// confidentiality and integrity, but installation policy is enforced on
// every load regardless.
func ecallRestoreState(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	payload, err := env.Unseal(input, sealedStateAAD, tee.SealToMeasurement)
	if err != nil {
		return nil, fmt.Errorf("%w: unseal: %v", ErrBadRequest, err)
	}
	r := wire.NewReader(payload)
	epoch := r.Uint64()
	keyDER := r.Bytes()
	progBytes := r.Bytes()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: sealed payload: %v", ErrBadRequest, err)
	}
	if latest := env.CounterRead(sealEpochCounter); epoch != latest {
		return nil, fmt.Errorf("%w: sealed state epoch %d is not the latest (%d) — possible rollback",
			ErrState, epoch, latest)
	}
	signKey, err := xcrypto.ParseSigningKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("%w: sealed key: %v", ErrBadRequest, err)
	}
	if err := installPredicate(env, cfg, ProvisionPayload{Predicate: progBytes}); err != nil {
		return nil, err
	}
	return nil, env.PutObject(objSignKey, signKey)
}

// ExportState seals the Glimmer's provisioned state for offline storage.
func (d *Device) ExportState() ([]byte, error) {
	return d.enclave.Call("export-state", nil)
}

// RestoreState reinstalls sealed state into a freshly loaded Glimmer,
// skipping the service provisioning round trip. Blinding material is
// deliberately not persisted: dealer masks are single-use and pairwise
// state is re-established per cohort.
func (d *Device) RestoreState(blob []byte) error {
	_, err := d.enclave.Call("restore-state", blob)
	return err
}
