package glimmer_test

import (
	"errors"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
)

func TestSealedStateSurvivesEnclaveTeardown(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	blob, err := dev.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	dev.Destroy()

	// A freshly loaded enclave restores without any service round trip.
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	sc, err := fresh.Contribute(1, fixed.FromFloats([]float64{0.1, 0.2, 0.3, 0.4}), nil)
	if err != nil {
		t.Fatalf("contribute after restore: %v", err)
	}
	if !svc.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature) {
		t.Fatal("restored glimmer produced an unverifiable signature")
	}
	// Validation still enforced after restore.
	if _, err := fresh.Contribute(2, fixed.FromFloats([]float64{538, 0, 0, 0}), nil); !errors.Is(err, glimmer.ErrRejected) {
		t.Fatalf("538 after restore: err = %v", err)
	}
}

func TestSealedStateRejectsOtherBinary(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	blob, err := dev.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// A Glimmer with a different config (hence measurement) cannot unseal.
	otherCfg, err := svc.GlimmerConfig(dim+1, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	other, err := glimmer.NewDevice(platform, otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("different measurement restored the sealed state")
	}
}

func TestSealedStateRejectsOtherPlatform(t *testing.T) {
	as, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	blob, err := dev.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	otherPlatform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	other, err := glimmer.NewDevice(otherPlatform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("sealed state migrated to another platform")
	}
}

func TestSealedStateRejectsTampering(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	blob, err := dev.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 1
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(blob); err == nil {
		t.Fatal("tampered sealed state restored")
	}
}

func TestSealedStateRollbackDetected(t *testing.T) {
	_, platform, svc := newWorld(t)
	dev := provisionedDevice(t, platform, svc, glimmer.ModeNone, nil)
	oldBlob, err := dev.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// A second export bumps the epoch; the old blob becomes stale.
	if _, err := dev.ExportState(); err != nil {
		t.Fatal(err)
	}
	dev.Destroy()
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(oldBlob); !errors.Is(err, glimmer.ErrState) {
		t.Fatalf("rollback err = %v, want ErrState", err)
	}
}

func TestExportRequiresProvisioning(t *testing.T) {
	_, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ExportState(); !errors.Is(err, glimmer.ErrNotProvisioned) {
		t.Fatalf("err = %v, want ErrNotProvisioned", err)
	}
}
