package glimmer

import (
	"bytes"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
)

// fuzzSeedContribution is a structurally valid encoded SignedContribution
// (the signature bytes are arbitrary — the codec does not verify).
func fuzzSeedContribution() []byte {
	sc := SignedContribution{
		ServiceName: "fuzz.example",
		Round:       3,
		Measurement: tee.Measurement{1, 2, 3, 4},
		Blinded:     fixed.Vector{fixed.FromFloat(0.25), fixed.Ring(1 << 63), 0},
		Confidence:  77,
		Signature:   bytes.Repeat([]byte{0x5A}, 64),
	}
	return EncodeSignedContribution(sc)
}

// FuzzDecodeSignedContributionBytes feeds attacker-controlled bytes to the
// contribution decoder — the first parser every submitted contribution
// hits on the service's ingest hot path. It must never panic or allocate
// beyond what the input justifies, and on success the format must be
// canonical: re-encoding reproduces the input, the recovered signed-bytes
// slice matches SignedBytes() of the decoded struct, and the round header
// peek agrees with the full decode.
func FuzzDecodeSignedContributionBytes(f *testing.F) {
	f.Add(fuzzSeedContribution())
	f.Add(EncodeSignedContribution(SignedContribution{}))
	// Hostile shapes: truncated vector count, absurd lengths, wrong-sized
	// measurement, trailing junk, and the ticketed wire variant (which the
	// signed decoder must refuse — the 12-byte ticket header can never pass
	// for a 32-byte measurement).
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0xAA, 0xBB, 0xff, 0xff, 0xff, 0x7f})
	f.Add(append(fuzzSeedContribution(), 0x00))
	f.Add(fuzzSeedTicketed())
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, signed, err := DecodeSignedContributionBytes(data)
		peekRound, peekErr := PeekContributionRound(data)
		if err != nil {
			return
		}
		if re := EncodeSignedContribution(sc); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		if want := sc.SignedBytes(); !bytes.Equal(signed, want) {
			t.Fatalf("signed bytes mismatch:\n got: %x\nwant: %x", signed, want)
		}
		if peekErr != nil {
			t.Fatalf("full decode succeeded but PeekContributionRound failed: %v", peekErr)
		}
		if peekRound != sc.Round {
			t.Fatalf("peeked round %d != decoded round %d", peekRound, sc.Round)
		}
		if PeekContributionTicketed(data) {
			t.Fatal("a decodable signed contribution peeked as ticketed")
		}
	})
}

// fuzzSeedTicketed is a structurally valid encoded TicketedContribution
// (the MAC bytes are arbitrary — the codec does not verify).
func fuzzSeedTicketed() []byte {
	return EncodeTicketedContribution(TicketedContribution{
		ServiceName: "fuzz.example",
		Round:       3,
		TicketID:    0xDEADBEEFCAFE,
		Blinded:     fixed.Vector{fixed.FromFloat(0.25), fixed.Ring(1 << 63), 0},
		Confidence:  77,
		MAC:         bytes.Repeat([]byte{0x5A}, 32),
	})
}

// FuzzDecodeTicketedContribution feeds attacker-controlled bytes to the
// MAC'd-variant decoder — the fast-path parser on the ticketed ingest
// route. Same contract as the signed decoder: no panics, canonical
// re-encode on success, scratch and copying decoders agree, the header
// peeks agree with the full decode, and the two wire variants can never be
// confused for each other.
func FuzzDecodeTicketedContribution(f *testing.F) {
	f.Add(fuzzSeedTicketed())
	f.Add(fuzzSeedContribution())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append(fuzzSeedTicketed(), 0x00))
	f.Add(fuzzSeedTicketed()[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		tc, err := DecodeTicketedContribution(data)
		if err != nil {
			return
		}
		if !PeekContributionTicketed(data) {
			t.Fatal("decodable ticketed contribution not peeked as ticketed")
		}
		if re := EncodeTicketedContribution(tc); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		var s TicketScratch
		preimage, serr := s.Decode(data)
		if serr != nil {
			t.Fatalf("copying decode succeeded but scratch decode failed: %v", serr)
		}
		if want := tc.MACBytes(); !bytes.Equal(preimage, want) {
			t.Fatalf("MAC preimage mismatch:\n got: %x\nwant: %x", preimage, want)
		}
		round, perr := PeekContributionRound(data)
		if perr != nil || round != tc.Round {
			t.Fatalf("round peek = (%d, %v), decoded round %d", round, perr, tc.Round)
		}
		name, nerr := PeekContributionService(data)
		if nerr != nil || string(name) != tc.ServiceName {
			t.Fatalf("service peek = (%q, %v), decoded name %q", name, nerr, tc.ServiceName)
		}
		if _, _, err := DecodeSignedContributionBytes(data); err == nil {
			t.Fatal("signed decoder accepted a ticketed contribution")
		}
	})
}
