package glimmer

import (
	"bytes"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
)

// fuzzSeedContribution is a structurally valid encoded SignedContribution
// (the signature bytes are arbitrary — the codec does not verify).
func fuzzSeedContribution() []byte {
	sc := SignedContribution{
		ServiceName: "fuzz.example",
		Round:       3,
		Measurement: tee.Measurement{1, 2, 3, 4},
		Blinded:     fixed.Vector{fixed.FromFloat(0.25), fixed.Ring(1 << 63), 0},
		Confidence:  77,
		Signature:   bytes.Repeat([]byte{0x5A}, 64),
	}
	return EncodeSignedContribution(sc)
}

// FuzzDecodeSignedContributionBytes feeds attacker-controlled bytes to the
// contribution decoder — the first parser every submitted contribution
// hits on the service's ingest hot path. It must never panic or allocate
// beyond what the input justifies, and on success the format must be
// canonical: re-encoding reproduces the input, the recovered signed-bytes
// slice matches SignedBytes() of the decoded struct, and the round header
// peek agrees with the full decode.
func FuzzDecodeSignedContributionBytes(f *testing.F) {
	f.Add(fuzzSeedContribution())
	f.Add(EncodeSignedContribution(SignedContribution{}))
	// Hostile shapes: truncated vector count, absurd lengths, wrong-sized
	// measurement, trailing junk.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0xAA, 0xBB, 0xff, 0xff, 0xff, 0x7f})
	f.Add(append(fuzzSeedContribution(), 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, signed, err := DecodeSignedContributionBytes(data)
		peekRound, peekErr := PeekContributionRound(data)
		if err != nil {
			return
		}
		if re := EncodeSignedContribution(sc); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		if want := sc.SignedBytes(); !bytes.Equal(signed, want) {
			t.Fatalf("signed bytes mismatch:\n got: %x\nwant: %x", signed, want)
		}
		if peekErr != nil {
			t.Fatalf("full decode succeeded but PeekContributionRound failed: %v", peekErr)
		}
		if peekRound != sc.Round {
			t.Fatalf("peeked round %d != decoded round %d", peekRound, sc.Round)
		}
	})
}
