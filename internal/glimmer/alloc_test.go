package glimmer

import (
	"bytes"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/race"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// allocContribution builds one structurally valid encoded contribution
// with a distinct vector per index, mirroring real ingest traffic.
func allocContribution(i int) []byte {
	sc := SignedContribution{
		ServiceName: "alloc.example",
		Round:       42,
		Measurement: tee.Measurement{9},
		Blinded:     make(fixed.Vector, 64),
		Confidence:  1,
		Signature:   bytes.Repeat([]byte{0x5A}, 70),
	}
	for j := range sc.Blinded {
		sc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + uint64(j))
	}
	return EncodeSignedContribution(sc)
}

// TestScratchDecodeAllocFree pins the tentpole contract: steady-state
// signed-contribution decode into a reused scratch performs zero heap
// allocations.
func TestScratchDecodeAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	raws := make([][]byte, 64)
	for i := range raws {
		raws[i] = allocContribution(i)
	}
	var s ContributionScratch
	// Warm the scratch so growth is behind us, as on a live pipeline.
	if _, err := s.Decode(raws[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	if got := testing.AllocsPerRun(500, func() {
		i++
		signed, err := s.Decode(raws[i%len(raws)])
		if err != nil {
			t.Fatal(err)
		}
		if len(signed) == 0 || s.SC.Round != 42 {
			t.Fatal("bad decode")
		}
	}); got > 0 {
		t.Errorf("scratch decode: %.1f allocs/op, want 0", got)
	}
}

// TestScratchDecodeMatchesCopyingDecode locks the scratch decoder to the
// copying decoder across a traffic mix, including the signed-bytes slice
// signature verification consumes.
func TestScratchDecodeMatchesCopyingDecode(t *testing.T) {
	var s ContributionScratch
	for i := 0; i < 8; i++ {
		raw := allocContribution(i)
		want, wantSigned, err := DecodeSignedContributionBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		signed, err := s.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(signed, wantSigned) {
			t.Fatalf("signed bytes diverge:\n got %x\nwant %x", signed, wantSigned)
		}
		if s.SC.ServiceName != want.ServiceName || s.SC.Round != want.Round ||
			s.SC.Measurement != want.Measurement || s.SC.Confidence != want.Confidence {
			t.Fatalf("decoded header diverges: %+v vs %+v", s.SC, want)
		}
		if len(s.SC.Blinded) != len(want.Blinded) {
			t.Fatalf("vector length %d vs %d", len(s.SC.Blinded), len(want.Blinded))
		}
		for j := range want.Blinded {
			if s.SC.Blinded[j] != want.Blinded[j] {
				t.Fatalf("vector[%d] diverges", j)
			}
		}
		if !bytes.Equal(s.SC.Signature, want.Signature) {
			t.Fatal("signature diverges")
		}
	}
}

// TestScratchDecodeRejectsMalformed mirrors the copying decoder's refusal
// behaviour on the scratch path.
func TestScratchDecodeRejectsMalformed(t *testing.T) {
	var s ContributionScratch
	good := allocContribution(1)
	shortMeasurement := wire.NewWriter().
		String("alloc.example").
		Uint64(42).
		Bytes([]byte{1, 2, 3}). // measurement must be exactly 32 bytes
		Uint64s(nil).
		Uint64(1).
		Bytes(nil).
		Finish()
	for name, raw := range map[string][]byte{
		"truncated":         good[:len(good)-3],
		"trailing":          append(append([]byte(nil), good...), 0x00),
		"garbage":           {0xff, 0xff, 0xff, 0xff},
		"short-measurement": shortMeasurement,
	} {
		if _, err := s.Decode(raw); err == nil {
			t.Errorf("%s: scratch decode accepted malformed input", name)
		}
		if _, _, err := DecodeSignedContributionBytes(raw); err == nil {
			t.Errorf("%s: copying decode accepted malformed input", name)
		}
	}
	// The scratch recovers after failures.
	if _, err := s.Decode(good); err != nil {
		t.Fatalf("scratch did not recover: %v", err)
	}
}

// TestPeekContributionRoundAllocFree guards the router's header peek.
func TestPeekContributionRoundAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	raw := allocContribution(3)
	if got := testing.AllocsPerRun(500, func() {
		round, err := PeekContributionRound(raw)
		if err != nil || round != 42 {
			t.Fatalf("round=%d err=%v", round, err)
		}
	}); got > 0 {
		t.Errorf("PeekContributionRound: %.1f allocs/op, want 0", got)
	}
}

// TestPeekContributionService locks the tenant router's name peek to the
// full decoder and to refusal on unroutable bytes.
func TestPeekContributionService(t *testing.T) {
	raw := allocContribution(5)
	name, err := PeekContributionService(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(name) != "alloc.example" {
		t.Fatalf("peeked name %q, want %q", name, "alloc.example")
	}
	for _, bad := range [][]byte{nil, {0x00}, {0x00, 0x00, 0x00, 0x09, 'x'}} {
		if _, err := PeekContributionService(bad); err == nil {
			t.Errorf("peek accepted unroutable bytes %x", bad)
		}
	}
}

// TestPeekContributionServiceAllocFree pins the tenant-routing peek at
// zero heap allocations: the PR-3 zero-allocation ingest path must survive
// frame-level routing.
func TestPeekContributionServiceAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	raw := allocContribution(3)
	if got := testing.AllocsPerRun(500, func() {
		name, err := PeekContributionService(raw)
		if err != nil || len(name) == 0 {
			t.Fatalf("name=%q err=%v", name, err)
		}
	}); got > 0 {
		t.Errorf("PeekContributionService: %.1f allocs/op, want 0", got)
	}
}
