package predicate

import (
	"bytes"
	"errors"
	"fmt"
	"math"
)

// Runtime errors.
var (
	ErrStepBudget    = errors.New("predicate: step budget exhausted")
	ErrDivByZero     = errors.New("predicate: division by zero")
	ErrIndexRange    = errors.New("predicate: input index out of range")
	ErrStackOverflow = errors.New("predicate: stack overflow")
	ErrHaltNoVerdict = errors.New("predicate: halted without a verdict")
)

// Options configures one execution.
type Options struct {
	// RecordTrace captures the outcome of every conditional branch,
	// enabling XTrec-style corroboration: a verifier can re-run the
	// predicate on claimed inputs and compare traces.
	RecordTrace bool
	// MaxSteps overrides the default step budget (MaxCost) when positive.
	MaxSteps int64
}

// Result is the outcome of a successful execution.
type Result struct {
	// Verdict is the declassified value passed to VERDICT. By convention
	// 0 means invalid, nonzero means valid (or a confidence in [0,100]).
	Verdict int64
	// Steps is the number of instructions executed.
	Steps int64
	// Trace is the branch trace, if recording was requested.
	Trace *Trace
}

// Trace is a packed sequence of conditional-branch outcomes.
type Trace struct {
	bits []byte
	n    int
}

func (t *Trace) append(taken bool) {
	if t.n%8 == 0 {
		t.bits = append(t.bits, 0)
	}
	if taken {
		t.bits[t.n/8] |= 1 << (t.n % 8)
	}
	t.n++
}

// Len returns the number of recorded branch outcomes.
func (t *Trace) Len() int { return t.n }

// Bytes returns the packed outcome bits.
func (t *Trace) Bytes() []byte { return append([]byte(nil), t.bits...) }

// Equal reports whether two traces recorded identical branch behaviour.
func (t *Trace) Equal(other *Trace) bool {
	if t == nil || other == nil {
		return t == other
	}
	return t.n == other.n && bytes.Equal(t.bits, other.bits)
}

// value is one tainted stack slot.
type value struct {
	v      int64
	secret bool
}

type loopFrame struct {
	start     int // pc of OpLoop
	end       int // pc of OpEndLoop
	remaining int64
	index     int64
}

// Run executes a program over the two input banks. It enforces the same
// safety properties dynamically that Verify proves statically (step budget,
// stack bounds, taint discipline), so even an unverified program cannot
// leak or diverge — it can only fail.
func Run(p *Program, contribution, private []int64, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	budget := opts.MaxSteps
	if budget <= 0 {
		budget = MaxCost
	}

	// Precompute loop matching.
	ends := make(map[int]int)
	var open []int
	for pc, ins := range p.Code {
		switch ins.Op {
		case OpLoop:
			open = append(open, pc)
		case OpEndLoop:
			if len(open) == 0 {
				return nil, fmt.Errorf("%w: endloop without loop at pc %d", ErrLoopStructure, pc)
			}
			ends[open[len(open)-1]] = pc
			open = open[:len(open)-1]
		}
	}
	if len(open) != 0 {
		return nil, fmt.Errorf("%w: unclosed loop", ErrLoopStructure)
	}

	var (
		stack  []value
		locals = make([]value, p.Locals)
		frames []loopFrame
		steps  int64
		trace  *Trace
	)
	if opts.RecordTrace {
		trace = &Trace{}
	}

	pop := func() value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v value) {
		stack = append(stack, v)
	}

	for pc := 0; pc < len(p.Code); {
		if steps++; steps > budget {
			return nil, fmt.Errorf("%w: %d steps", ErrStepBudget, budget)
		}
		ins := p.Code[pc]
		pops, pushes := stackEffect(ins.Op)
		if len(stack) < pops {
			return nil, fmt.Errorf("%w: underflow at pc %d (%s)", ErrStackDepth, pc, ins)
		}
		if len(stack)-pops+pushes > MaxStack {
			return nil, fmt.Errorf("%w: at pc %d", ErrStackOverflow, pc)
		}

		switch ins.Op {
		case OpHalt:
			return nil, ErrHaltNoVerdict
		case OpPush:
			push(value{v: ins.Arg})
		case OpLoadC:
			if ins.Arg < 0 || ins.Arg >= int64(len(contribution)) {
				return nil, fmt.Errorf("%w: contribution[%d] of %d", ErrIndexRange, ins.Arg, len(contribution))
			}
			push(value{v: contribution[ins.Arg], secret: true})
		case OpLoadP:
			if ins.Arg < 0 || ins.Arg >= int64(len(private)) {
				return nil, fmt.Errorf("%w: private[%d] of %d", ErrIndexRange, ins.Arg, len(private))
			}
			push(value{v: private[ins.Arg], secret: true})
		case OpLoadCI:
			idx := pop()
			if idx.v < 0 || idx.v >= int64(len(contribution)) {
				return nil, fmt.Errorf("%w: contribution[%d] of %d", ErrIndexRange, idx.v, len(contribution))
			}
			push(value{v: contribution[idx.v], secret: true})
		case OpLoadPI:
			idx := pop()
			if idx.v < 0 || idx.v >= int64(len(private)) {
				return nil, fmt.Errorf("%w: private[%d] of %d", ErrIndexRange, idx.v, len(private))
			}
			push(value{v: private[idx.v], secret: true})
		case OpLenC:
			push(value{v: int64(len(contribution))})
		case OpLenP:
			push(value{v: int64(len(private))})
		case OpLoad:
			if ins.Arg < 0 || ins.Arg >= int64(len(locals)) {
				return nil, fmt.Errorf("%w: local %d of %d at pc %d", ErrBadArg, ins.Arg, len(locals), pc)
			}
			push(locals[ins.Arg])
		case OpStore:
			if ins.Arg < 0 || ins.Arg >= int64(len(locals)) {
				return nil, fmt.Errorf("%w: local %d of %d at pc %d", ErrBadArg, ins.Arg, len(locals), pc)
			}
			locals[ins.Arg] = pop()
		case OpIdx:
			k := int(ins.Arg)
			if k < 0 || k >= len(frames) {
				return nil, fmt.Errorf("%w: idx %d with %d active loops at pc %d", ErrBadArg, k, len(frames), pc)
			}
			push(value{v: frames[len(frames)-1-k].index})
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpMin, OpMax,
			OpLt, OpLe, OpGt, OpGe, OpEq, OpNe, OpAnd, OpOr:
			b := pop()
			a := pop()
			r, err := binaryOp(ins.Op, a.v, b.v)
			if err != nil {
				return nil, fmt.Errorf("%w at pc %d", err, pc)
			}
			push(value{v: r, secret: a.secret || b.secret})
		case OpNeg:
			a := pop()
			push(value{v: -a.v, secret: a.secret})
		case OpAbs:
			a := pop()
			v := a.v
			if v < 0 {
				v = -v
			}
			push(value{v: v, secret: a.secret})
		case OpNot:
			a := pop()
			push(value{v: boolToInt(a.v == 0), secret: a.secret})
		case OpDup:
			a := pop()
			push(a)
			push(a)
		case OpPop:
			pop()
		case OpSwap:
			b := pop()
			a := pop()
			push(b)
			push(a)
		case OpOver:
			b := pop()
			a := pop()
			push(a)
			push(b)
			push(a)
		case OpSelect:
			cond := pop()
			onFalse := pop()
			onTrue := pop()
			out := onFalse
			if cond.v != 0 {
				out = onTrue
			}
			out.secret = out.secret || cond.secret || onTrue.secret || onFalse.secret
			push(out)
		case OpJmp:
			target := int64(pc) + 1 + ins.Arg
			if target < 0 || target > int64(len(p.Code)) {
				return nil, fmt.Errorf("%w: jump to %d at pc %d", ErrJumpTarget, target, pc)
			}
			pc = int(target)
			continue
		case OpJz:
			cond := pop()
			if cond.secret {
				return nil, fmt.Errorf("%w: at pc %d", ErrSecretBranch, pc)
			}
			taken := cond.v == 0
			if trace != nil {
				trace.append(taken)
			}
			if taken {
				target := int64(pc) + 1 + ins.Arg
				if target < 0 || target > int64(len(p.Code)) {
					return nil, fmt.Errorf("%w: jump to %d at pc %d", ErrJumpTarget, target, pc)
				}
				pc = int(target)
				continue
			}
		case OpLoop:
			end, ok := ends[pc]
			if !ok {
				return nil, fmt.Errorf("%w: loop without end at pc %d", ErrLoopStructure, pc)
			}
			if ins.Arg == 0 {
				pc = end + 1
				continue
			}
			frames = append(frames, loopFrame{start: pc, end: end, remaining: ins.Arg, index: 0})
		case OpEndLoop:
			if len(frames) == 0 {
				// Reachable only by jumping into a loop body, which the
				// verifier forbids; unverified programs fail cleanly.
				return nil, fmt.Errorf("%w: endloop with no active loop at pc %d", ErrLoopStructure, pc)
			}
			f := &frames[len(frames)-1]
			f.remaining--
			if f.remaining > 0 {
				f.index++
				pc = f.start + 1
				continue
			}
			frames = frames[:len(frames)-1]
		case OpDeclass:
			a := pop()
			push(value{v: a.v})
		case OpVerdict:
			v := pop()
			if v.secret {
				return nil, fmt.Errorf("%w: at pc %d", ErrTaintedVerdict, pc)
			}
			return &Result{Verdict: v.v, Steps: steps, Trace: trace}, nil
		default:
			return nil, fmt.Errorf("%w: %s at pc %d", ErrBadOp, ins.Op, pc)
		}
		pc++
	}
	return nil, ErrHaltNoVerdict
}

func binaryOp(op Op, a, b int64) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, ErrDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			// Two's-complement wrap: Go's / panics on this one case.
			return a, nil
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, ErrDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			return 0, nil
		}
		return a % b, nil
	case OpMin:
		if a < b {
			return a, nil
		}
		return b, nil
	case OpMax:
		if a > b {
			return a, nil
		}
		return b, nil
	case OpLt:
		return boolToInt(a < b), nil
	case OpLe:
		return boolToInt(a <= b), nil
	case OpGt:
		return boolToInt(a > b), nil
	case OpGe:
		return boolToInt(a >= b), nil
	case OpEq:
		return boolToInt(a == b), nil
	case OpNe:
		return boolToInt(a != b), nil
	case OpAnd:
		return boolToInt(a != 0 && b != 0), nil
	case OpOr:
		return boolToInt(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("%w: %s", ErrBadOp, op)
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
