// Package predicate implements the validation-predicate machine Glimmers
// run over private data.
//
// Section 3 of the paper argues a Glimmer is amenable to formal verification
// because its validation logic is written in a simple language with
// low-complexity idioms — bounded loops, no function pointers — with secret
// inputs explicitly marked and declassification points explicit. This
// package is that language:
//
//   - Programs are stack bytecode with structured, constant-bound loops and
//     forward-only jumps, so every program provably terminates within a
//     statically computed cost bound.
//   - The static verifier (Verify) checks stack discipline, jump structure,
//     loop bounds, and performs an information-flow analysis proving that
//     the verdict cannot depend on secret inputs except through explicit
//     DECLASS instructions.
//   - The interpreter (Run) additionally enforces taint dynamically — a
//     defense-in-depth backstop — and can record a branch trace, the
//     VM-level analogue of the XTrec execution tracing the paper cites for
//     corroborating claimed computations.
//   - Programs serialize deterministically and can be shipped encrypted to
//     a Glimmer (validation confidentiality, §4.1).
//
// Inputs come in two banks, mirroring Figure 3: the contribution (what the
// user proposes to send the service) and private validation data (context
// the predicate may inspect but which must never leave). Both are secret;
// the only public output is the verdict.
package predicate

import "fmt"

// Op is a bytecode opcode.
type Op byte

// The instruction set. Arithmetic is int64 (fixed-point values from
// internal/fixed are range-checked as raw int64 with Scale as a constant).
const (
	// OpHalt stops execution without a verdict (an error unless a verdict
	// was already set by OpVerdict, which halts on its own).
	OpHalt Op = iota
	// OpPush pushes the immediate Arg (untainted constant).
	OpPush
	// OpLoadC pushes contribution[Arg] (secret).
	OpLoadC
	// OpLoadP pushes private[Arg] (secret).
	OpLoadP
	// OpLoadCI pops an index and pushes contribution[index] (secret).
	OpLoadCI
	// OpLoadPI pops an index and pushes private[index] (secret).
	OpLoadPI
	// OpLenC pushes len(contribution). Lengths are public.
	OpLenC
	// OpLenP pushes len(private).
	OpLenP
	// OpLoad pushes local variable Arg.
	OpLoad
	// OpStore pops into local variable Arg.
	OpStore
	// OpIdx pushes the current index of the Arg-th enclosing loop
	// (0 = innermost). Untainted.
	OpIdx
	// Arithmetic: pop operands, push result. Taint is the union.
	OpAdd
	OpSub
	OpMul
	OpDiv // division by zero is a runtime error
	OpMod // modulo by zero is a runtime error
	OpNeg
	OpAbs
	OpMin
	OpMax
	// Comparisons push 1 or 0.
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	// Logic treats nonzero as true, pushes 1 or 0.
	OpAnd
	OpOr
	OpNot
	// Stack manipulation.
	OpDup
	OpPop
	OpSwap
	OpOver
	// OpSelect pops cond, onFalse, onTrue and pushes onTrue if cond != 0
	// else onFalse. Taint is the union of all three.
	OpSelect
	// OpJmp jumps forward by Arg instructions (target pc+1+Arg).
	OpJmp
	// OpJz pops a condition and jumps forward by Arg if it is zero. The
	// taken/not-taken outcome is recorded in the branch trace.
	OpJz
	// OpLoop begins a loop executing its body exactly Arg times (Arg >= 0,
	// constant). Loops nest; bodies must be stack-neutral.
	OpLoop
	// OpEndLoop closes the innermost OpLoop.
	OpEndLoop
	// OpDeclass pops a value and pushes it untainted. This is the explicit
	// declassification point the paper requires programmers to mark.
	OpDeclass
	// OpVerdict pops the final (untainted) verdict and halts.
	OpVerdict

	opCount // sentinel
)

var opNames = map[Op]string{
	OpHalt: "halt", OpPush: "push", OpLoadC: "loadc", OpLoadP: "loadp",
	OpLoadCI: "loadci", OpLoadPI: "loadpi", OpLenC: "lenc", OpLenP: "lenp",
	OpLoad: "load", OpStore: "store", OpIdx: "idx",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpAbs: "abs", OpMin: "min", OpMax: "max",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpEq: "eq", OpNe: "ne",
	OpAnd: "and", OpOr: "or", OpNot: "not",
	OpDup: "dup", OpPop: "pop", OpSwap: "swap", OpOver: "over",
	OpSelect: "select", OpJmp: "jmp", OpJz: "jz",
	OpLoop: "loop", OpEndLoop: "endloop",
	OpDeclass: "declass", OpVerdict: "verdict",
}

// String returns the assembly mnemonic for the opcode.
func (o Op) String() string {
	if name, ok := opNames[o]; ok {
		return name
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// hasArg reports whether the opcode carries an immediate argument.
func (o Op) hasArg() bool {
	switch o {
	case OpPush, OpLoadC, OpLoadP, OpLoad, OpStore, OpIdx, OpJmp, OpJz, OpLoop:
		return true
	}
	return false
}

// Instr is one instruction.
type Instr struct {
	Op  Op
	Arg int64
}

// String renders the instruction in assembly form.
func (i Instr) String() string {
	if i.Op.hasArg() {
		return fmt.Sprintf("%s %d", i.Op, i.Arg)
	}
	return i.Op.String()
}

// Program is a validation predicate: named, versioned bytecode.
type Program struct {
	// Name identifies the predicate in logs and provenance records.
	Name string
	// Code is the instruction sequence.
	Code []Instr
	// Locals is the number of local variable slots the program may use.
	Locals int
}

// Structural limits enforced by the verifier.
const (
	MaxCode      = 1 << 16 // instructions per program
	MaxLocals    = 64
	MaxStack     = 256
	MaxLoopCount = 1 << 20 // iterations per single loop
	MaxCost      = 1 << 26 // total instruction budget including loops
	MaxNesting   = 8       // loop nesting depth
)
