package predicate

import "fmt"

// Builder assembles programs programmatically with structured loops and
// forward label references. It is how the rest of the system (and the
// standard predicate library) constructs predicates.
type Builder struct {
	name    string
	code    []Instr
	locals  int
	pending map[*Label][]int // label -> pcs of jumps awaiting resolution
	errs    []error
}

// Label is a forward jump target.
type Label struct{ bound bool }

// NewBuilder starts a program with the given name and local-variable count.
func NewBuilder(name string, locals int) *Builder {
	return &Builder{name: name, locals: locals, pending: make(map[*Label][]int)}
}

func (b *Builder) emit(op Op, arg int64) *Builder {
	b.code = append(b.code, Instr{Op: op, Arg: arg})
	return b
}

// Instruction emitters, one per opcode.

func (b *Builder) Push(v int64) *Builder  { return b.emit(OpPush, v) }
func (b *Builder) LoadC(i int) *Builder   { return b.emit(OpLoadC, int64(i)) }
func (b *Builder) LoadP(i int) *Builder   { return b.emit(OpLoadP, int64(i)) }
func (b *Builder) LoadCI() *Builder       { return b.emit(OpLoadCI, 0) }
func (b *Builder) LoadPI() *Builder       { return b.emit(OpLoadPI, 0) }
func (b *Builder) LenC() *Builder         { return b.emit(OpLenC, 0) }
func (b *Builder) LenP() *Builder         { return b.emit(OpLenP, 0) }
func (b *Builder) Load(slot int) *Builder { return b.emit(OpLoad, int64(slot)) }
func (b *Builder) Store(slot int) *Builder {
	return b.emit(OpStore, int64(slot))
}
func (b *Builder) Idx(depth int) *Builder { return b.emit(OpIdx, int64(depth)) }
func (b *Builder) Add() *Builder          { return b.emit(OpAdd, 0) }
func (b *Builder) Sub() *Builder          { return b.emit(OpSub, 0) }
func (b *Builder) Mul() *Builder          { return b.emit(OpMul, 0) }
func (b *Builder) Div() *Builder          { return b.emit(OpDiv, 0) }
func (b *Builder) Mod() *Builder          { return b.emit(OpMod, 0) }
func (b *Builder) Neg() *Builder          { return b.emit(OpNeg, 0) }
func (b *Builder) Abs() *Builder          { return b.emit(OpAbs, 0) }
func (b *Builder) Min() *Builder          { return b.emit(OpMin, 0) }
func (b *Builder) Max() *Builder          { return b.emit(OpMax, 0) }
func (b *Builder) Lt() *Builder           { return b.emit(OpLt, 0) }
func (b *Builder) Le() *Builder           { return b.emit(OpLe, 0) }
func (b *Builder) Gt() *Builder           { return b.emit(OpGt, 0) }
func (b *Builder) Ge() *Builder           { return b.emit(OpGe, 0) }
func (b *Builder) Eq() *Builder           { return b.emit(OpEq, 0) }
func (b *Builder) Ne() *Builder           { return b.emit(OpNe, 0) }
func (b *Builder) And() *Builder          { return b.emit(OpAnd, 0) }
func (b *Builder) Or() *Builder           { return b.emit(OpOr, 0) }
func (b *Builder) Not() *Builder          { return b.emit(OpNot, 0) }
func (b *Builder) Dup() *Builder          { return b.emit(OpDup, 0) }
func (b *Builder) Pop() *Builder          { return b.emit(OpPop, 0) }
func (b *Builder) Swap() *Builder         { return b.emit(OpSwap, 0) }
func (b *Builder) Over() *Builder         { return b.emit(OpOver, 0) }
func (b *Builder) Select() *Builder       { return b.emit(OpSelect, 0) }
func (b *Builder) Declass() *Builder      { return b.emit(OpDeclass, 0) }
func (b *Builder) Verdict() *Builder      { return b.emit(OpVerdict, 0) }
func (b *Builder) Halt() *Builder         { return b.emit(OpHalt, 0) }

// NewLabel creates an unbound forward target.
func (b *Builder) NewLabel() *Label { return &Label{} }

// Jmp emits an unconditional forward jump to the (not yet bound) label.
func (b *Builder) Jmp(l *Label) *Builder {
	b.pending[l] = append(b.pending[l], len(b.code))
	return b.emit(OpJmp, 0)
}

// Jz emits a conditional forward jump to the label, taken when the popped
// condition is zero.
func (b *Builder) Jz(l *Label) *Builder {
	b.pending[l] = append(b.pending[l], len(b.code))
	return b.emit(OpJz, 0)
}

// Bind fixes the label at the current position. Binding twice is an error.
func (b *Builder) Bind(l *Label) *Builder {
	if l.bound {
		b.errs = append(b.errs, fmt.Errorf("predicate: label bound twice"))
		return b
	}
	l.bound = true
	target := len(b.code)
	for _, pc := range b.pending[l] {
		b.code[pc].Arg = int64(target - pc - 1)
	}
	delete(b.pending, l)
	return b
}

// Loop emits a constant-count loop around the body built by fn.
func (b *Builder) Loop(count int64, fn func(*Builder)) *Builder {
	b.emit(OpLoop, count)
	fn(b)
	return b.emit(OpEndLoop, 0)
}

// Build finalizes the program. It fails if any label was never bound.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.pending) > 0 {
		return nil, fmt.Errorf("predicate: %d labels never bound", len(b.pending))
	}
	return &Program{
		Name:   b.name,
		Code:   append([]Instr(nil), b.code...),
		Locals: b.locals,
	}, nil
}

// MustBuild is Build for statically known-correct programs (the standard
// library); it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
