package predicate

import (
	"fmt"

	"glimmers/internal/fixed"
)

// The standard predicate library: the validators the paper's scenarios
// need, written branch-free over secrets so they pass the information-flow
// verifier. All of them follow the same shape — fold a boolean accumulator
// over the inputs, declassify once, emit the verdict.

// RangeCheck builds the paper's canonical validator: every element of a
// dim-length contribution must lie in [lo, hi]. This is the predicate that
// blocks Figure 1d's adversarial weight of 538 when the valid range is the
// fixed-point encoding of [0, 1].
func RangeCheck(name string, dim int, lo, hi int64) *Program {
	b := NewBuilder(name, 1)
	b.Push(1).Store(0)
	// Length must match exactly; a short or padded vector is invalid.
	b.LenC().Push(int64(dim)).Eq().Load(0).And().Store(0)
	b.Loop(int64(dim), func(b *Builder) {
		b.Idx(0).LoadCI() // v
		b.Dup()
		b.Push(lo).Ge() // v, v>=lo
		b.Swap()
		b.Push(hi).Le() // v>=lo, v<=hi
		b.And()
		b.Load(0).And().Store(0)
	})
	b.Load(0).Declass().Verdict()
	return b.MustBuild()
}

// UnitRangeCheck is RangeCheck specialized to the fixed-point encoding of
// [0, 1] — the valid range for the paper's model weights.
func UnitRangeCheck(name string, dim int) *Program {
	return RangeCheck(name, dim, 0, fixed.Scale)
}

// SumBound builds a validator checking that the sum of the contribution
// lies in [lo, hi]: a mass-conservation check (e.g. a probability row must
// not sum far above 1 even if each element is individually legal).
func SumBound(name string, dim int, lo, hi int64) *Program {
	b := NewBuilder(name, 1)
	b.Push(0).Store(0)
	b.Loop(int64(dim), func(b *Builder) {
		b.Idx(0).LoadCI().Load(0).Add().Store(0)
	})
	b.Load(0).Push(lo).Ge()
	b.Load(0).Push(hi).Le()
	b.And()
	// Also require the expected dimension.
	b.LenC().Push(int64(dim)).Eq().And()
	b.Declass().Verdict()
	return b.MustBuild()
}

// CrossCheck builds a corroboration validator: for every element i of the
// dim-length contribution, the matching element of the private validation
// data (e.g. a locally observed count or measurement) must be within
// tolerance of it. This is the simplest form of the paper's "more invasive"
// validation — checking the contribution against private context the
// service never sees.
func CrossCheck(name string, dim int, tolerance int64) *Program {
	b := NewBuilder(name, 1)
	b.Push(1).Store(0)
	b.LenC().Push(int64(dim)).Eq().Load(0).And().Store(0)
	b.LenP().Push(int64(dim)).Eq().Load(0).And().Store(0)
	b.Loop(int64(dim), func(b *Builder) {
		b.Idx(0).LoadCI() // claimed
		b.Idx(0).LoadPI() // observed
		b.Sub().Abs()
		b.Push(tolerance).Le()
		b.Load(0).And().Store(0)
	})
	b.Load(0).Declass().Verdict()
	return b.MustBuild()
}

// ThresholdScore builds a weighted-sum classifier over the private bank: it
// computes sum(private[i] * weight[i]) and returns 1 when the score is at
// least threshold. This is the §4.1 bot-detector shape: the signal vector is
// private, the weights and threshold are the (possibly confidential)
// detector parameters, and exactly one bit comes out.
func ThresholdScore(name string, weights []int64, threshold int64) *Program {
	b := NewBuilder(name, 1)
	b.Push(0).Store(0)
	for i, w := range weights {
		b.LoadP(i).Push(w).Mul().Load(0).Add().Store(0)
	}
	b.Load(0).Push(threshold).Ge()
	// Length check: reject vectors with unexpected extra signals.
	b.LenP().Push(int64(len(weights))).Eq().And()
	b.Declass().Verdict()
	return b.MustBuild()
}

// AlwaysValid returns a trivially accepting predicate, the "no validation"
// baseline configuration (Figure 1c without a Glimmer check).
func AlwaysValid(name string) *Program {
	return NewBuilder(name, 0).Push(1).Declass().Verdict().MustBuild()
}

// MustVerify verifies a standard-library program and panics on failure; the
// library's own predicates are all verifiable by construction, so a failure
// is a bug.
func MustVerify(p *Program) *Analysis {
	a, err := Verify(p)
	if err != nil {
		panic(fmt.Sprintf("predicate: stdlib program %q failed verification: %v", p.Name, err))
	}
	return a
}
