package predicate

import (
	"crypto/sha256"
	"fmt"

	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Encode serializes a program deterministically. The encoding doubles as
// the program's identity: vetting authorities publish SHA-256(Encode(p)).
func Encode(p *Program) []byte {
	w := wire.NewWriter()
	w.String(p.Name)
	w.Uint32(uint32(p.Locals))
	w.Uint32(uint32(len(p.Code)))
	for _, ins := range p.Code {
		w.Byte(byte(ins.Op))
		w.Uint64(uint64(ins.Arg))
	}
	return w.Finish()
}

// Decode reverses Encode.
func Decode(data []byte) (*Program, error) {
	r := wire.NewReader(data)
	p := &Program{Name: r.String(), Locals: int(r.Uint32())}
	n := r.Uint32()
	if n > MaxCode {
		return nil, fmt.Errorf("%w: %d instructions", ErrTooLarge, n)
	}
	p.Code = make([]Instr, n)
	for i := range p.Code {
		p.Code[i] = Instr{Op: Op(r.Byte()), Arg: int64(r.Uint64())}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("predicate: decode: %w", err)
	}
	return p, nil
}

// Digest returns the program's canonical identity hash.
func Digest(p *Program) [32]byte {
	return sha256.Sum256(Encode(p))
}

// Encrypt wraps a program in an authenticated encrypted container for
// validation confidentiality (§4.1): the service ships the predicate to the
// Glimmer over an attested channel without the host — or the user — seeing
// its logic. The associated data binds the container to a context (e.g. the
// service identity and protocol version).
func Encrypt(p *Program, key [32]byte, associated []byte) ([]byte, error) {
	return xcrypto.Seal(key, Encode(p), associated)
}

// Decrypt opens an encrypted predicate container. It runs inside the
// Glimmer enclave; the plaintext program never exists outside it.
func Decrypt(container []byte, key [32]byte, associated []byte) (*Program, error) {
	plaintext, err := xcrypto.Open(key, container, associated)
	if err != nil {
		return nil, fmt.Errorf("predicate: decrypt: %w", err)
	}
	return Decode(plaintext)
}
