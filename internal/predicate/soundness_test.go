package predicate

import (
	"errors"
	"testing"

	"glimmers/internal/xcrypto"
)

// randomProgram draws an arbitrary (usually invalid) program from the PRG.
// Arguments are biased toward small values so a useful fraction of programs
// pass structural checks.
func randomProgram(prg *xcrypto.PRG) *Program {
	n := prg.Intn(20) + 1
	code := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		op := Op(prg.Intn(int(opCount)))
		var arg int64
		if op.hasArg() {
			arg = int64(prg.Intn(6))
			if op == OpPush && prg.Intn(2) == 0 {
				arg = int64(prg.Uint64()) // occasionally huge immediates
			}
		}
		code = append(code, Instr{Op: op, Arg: arg})
	}
	return &Program{Name: "fuzz", Code: code, Locals: prg.Intn(4)}
}

// TestVerifierSoundnessFuzz is the soundness property behind the paper's
// verification claim: for ANY program the static verifier accepts, the
// interpreter (1) terminates within the proven cost bound, (2) never
// reports a dynamic taint or secret-branch violation (those were proven
// absent), and (3) never panics. Programs the verifier rejects are simply
// skipped — rejection is always safe.
func TestVerifierSoundnessFuzz(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("verifier-soundness"))
	contribution := []int64{3, -7, 42, 0, 1}
	private := []int64{9, 9, 9}
	verified := 0
	const samples = 30000
	for i := 0; i < samples; i++ {
		p := randomProgram(prg)
		analysis, err := Verify(p)
		if err != nil {
			continue
		}
		verified++
		res, err := Run(p, contribution, private, &Options{MaxSteps: analysis.CostBound})
		if err == nil {
			if res.Steps > analysis.CostBound {
				t.Fatalf("program %v: steps %d exceed proven bound %d", p.Code, res.Steps, analysis.CostBound)
			}
			continue
		}
		// Runtime faults on data (division, dynamic indexing) are allowed;
		// violations of statically proven properties are not.
		switch {
		case errors.Is(err, ErrTaintedVerdict), errors.Is(err, ErrSecretBranch):
			t.Fatalf("verified program violated taint at runtime: %v\n%s", err, Disassemble(p))
		case errors.Is(err, ErrStepBudget):
			t.Fatalf("verified program exceeded its proven cost bound: %v\n%s", err, Disassemble(p))
		case errors.Is(err, ErrStackDepth), errors.Is(err, ErrStackOverflow):
			t.Fatalf("verified program violated stack discipline at runtime: %v\n%s", err, Disassemble(p))
		case errors.Is(err, ErrDivByZero), errors.Is(err, ErrIndexRange), errors.Is(err, ErrHaltNoVerdict), errors.Is(err, ErrBadArg):
			// acceptable data-dependent faults
		default:
			t.Fatalf("verified program failed unexpectedly: %v\n%s", err, Disassemble(p))
		}
	}
	if verified < 50 {
		t.Fatalf("only %d/%d random programs verified — fuzz coverage too thin", verified, samples)
	}
	t.Logf("fuzz: %d/%d random programs verified and ran soundly", verified, samples)
}

// TestVerifierRejectionIsTotal: Verify never panics on arbitrary programs.
func TestVerifierRejectionIsTotal(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("verifier-total"))
	for i := 0; i < 50000; i++ {
		p := randomProgram(prg)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Verify panicked on %v: %v", p.Code, r)
				}
			}()
			_, _ = Verify(p)
		}()
	}
}

// TestInterpreterTotalOnUnverified: Run never panics even on programs that
// failed (or skipped) verification — dynamic checks catch everything.
func TestInterpreterTotalOnUnverified(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("interp-total"))
	contribution := []int64{1, 2}
	for i := 0; i < 50000; i++ {
		p := randomProgram(prg)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Run panicked on %v: %v", p.Code, r)
				}
			}()
			_, _ = Run(p, contribution, nil, &Options{MaxSteps: 10000})
		}()
	}
}
