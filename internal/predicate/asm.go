package predicate

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into a Program. The syntax is one
// instruction per line, `;` comments, `name:` labels (forward references
// only), and `@name` jump targets:
//
//	; all weights within [0, scale]
//	push 1
//	store 0
//	loop 4
//	  idx 0
//	  loadci
//	  dup
//	  push 0
//	  ge
//	  swap
//	  push 1048576
//	  le
//	  and
//	  load 0
//	  and
//	  store 0
//	endloop
//	load 0
//	declass
//	verdict
//
// Assembly is how externally authored predicates (e.g. the service-supplied
// detectors of §4.1) are written, reviewed, and vetted.
func Assemble(name, src string, locals int) (*Program, error) {
	nameToOp := make(map[string]Op, len(opNames))
	for op, opName := range opNames {
		nameToOp[opName] = op
	}

	type fixup struct {
		pc    int
		label string
		line  int
	}
	var (
		code   []Instr
		labels = make(map[string]int)
		fixups []fixup
	)

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels may share a line with an instruction: "end: verdict".
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("predicate: line %d: malformed label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("predicate: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(code)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		op, ok := nameToOp[fields[0]]
		if !ok {
			return nil, fmt.Errorf("predicate: line %d: unknown mnemonic %q", lineNo+1, fields[0])
		}
		var arg int64
		switch {
		case op.hasArg() && len(fields) == 2:
			if strings.HasPrefix(fields[1], "@") {
				if op != OpJmp && op != OpJz {
					return nil, fmt.Errorf("predicate: line %d: label operand on %s", lineNo+1, op)
				}
				fixups = append(fixups, fixup{pc: len(code), label: fields[1][1:], line: lineNo + 1})
			} else {
				v, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("predicate: line %d: bad operand %q: %v", lineNo+1, fields[1], err)
				}
				arg = v
			}
		case !op.hasArg() && len(fields) == 1:
			// no operand
		default:
			return nil, fmt.Errorf("predicate: line %d: %s takes %s", lineNo+1, op, operandArity(op))
		}
		code = append(code, Instr{Op: op, Arg: arg})
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("predicate: line %d: undefined label %q", f.line, f.label)
		}
		code[f.pc].Arg = int64(target - f.pc - 1)
	}
	return &Program{Name: name, Code: code, Locals: locals}, nil
}

func operandArity(op Op) string {
	if op.hasArg() {
		return "one operand"
	}
	return "no operand"
}

// Disassemble renders a program back to assembly, resolving jump targets to
// labels. The output re-assembles to an identical program, which lets a
// vetting authority publish human-reviewable predicate text alongside the
// measurement.
func Disassemble(p *Program) string {
	targets := make(map[int]string)
	for pc, ins := range p.Code {
		if ins.Op == OpJmp || ins.Op == OpJz {
			t := pc + 1 + int(ins.Arg)
			if _, ok := targets[t]; !ok {
				targets[t] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %q, %d locals\n", p.Name, p.Locals)
	for pc, ins := range p.Code {
		if label, ok := targets[pc]; ok {
			fmt.Fprintf(&sb, "%s:\n", label)
		}
		switch ins.Op {
		case OpJmp, OpJz:
			fmt.Fprintf(&sb, "  %s @%s\n", ins.Op, targets[pc+1+int(ins.Arg)])
		default:
			fmt.Fprintf(&sb, "  %s\n", ins)
		}
	}
	if label, ok := targets[len(p.Code)]; ok {
		fmt.Fprintf(&sb, "%s:\n", label)
	}
	return sb.String()
}
