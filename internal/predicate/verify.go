package predicate

import (
	"errors"
	"fmt"
)

// Verification errors. All are wrapped with position information.
var (
	ErrBadOp          = errors.New("predicate: invalid opcode")
	ErrBadArg         = errors.New("predicate: invalid argument")
	ErrLoopStructure  = errors.New("predicate: malformed loop structure")
	ErrJumpTarget     = errors.New("predicate: invalid jump target")
	ErrStackDepth     = errors.New("predicate: stack discipline violation")
	ErrCostBound      = errors.New("predicate: cost bound exceeded")
	ErrFallsOffEnd    = errors.New("predicate: control can fall off the end")
	ErrNoVerdict      = errors.New("predicate: no reachable verdict")
	ErrInfoFlow       = errors.New("predicate: information-flow violation")
	ErrTooLarge       = errors.New("predicate: program exceeds size limits")
	ErrSecretBranch   = errors.New("predicate: branch on undeclassified secret")
	ErrTaintedVerdict = errors.New("predicate: verdict depends on undeclassified secret")
)

// Analysis is the verifier's certificate: the properties it proved about a
// program. A Glimmer only installs predicates whose Analysis satisfies its
// policy (e.g. at most one declassification site — the single verdict).
type Analysis struct {
	// MaxStackDepth is the proven worst-case operand stack depth.
	MaxStackDepth int
	// CostBound is the proven worst-case instruction count including loop
	// multiplicities: the program always halts within this budget.
	CostBound int64
	// DeclassSites lists the program counters of DECLASS instructions —
	// the complete set of points where secret data may influence output.
	DeclassSites []int
	// ReadsContribution and ReadsPrivate report which input banks the
	// program touches.
	ReadsContribution bool
	ReadsPrivate      bool
	// Verdicts lists the program counters of VERDICT instructions.
	Verdicts []int
}

// stack/taint abstract state per program counter.
type absState struct {
	set    bool
	depth  int
	stack  []bool // taint per operand slot, stack[0] is bottom
	locals []bool // taint per local
	pc     bool   // control-flow taint: true once a secret branch occurred
}

func (s *absState) clone() absState {
	return absState{
		set:    true,
		depth:  s.depth,
		stack:  append([]bool(nil), s.stack...),
		locals: append([]bool(nil), s.locals...),
		pc:     s.pc,
	}
}

// mergeInto joins src into dst (OR on taints), requiring equal depths.
// Reports whether dst changed, or an error on depth mismatch.
func mergeInto(dst *absState, src absState, pc int) (bool, error) {
	if !dst.set {
		*dst = src.clone()
		return true, nil
	}
	if dst.depth != src.depth {
		return false, fmt.Errorf("%w: depth %d vs %d at pc %d", ErrStackDepth, dst.depth, src.depth, pc)
	}
	changed := false
	for i := range dst.stack {
		if src.stack[i] && !dst.stack[i] {
			dst.stack[i] = true
			changed = true
		}
	}
	for i := range dst.locals {
		if src.locals[i] && !dst.locals[i] {
			dst.locals[i] = true
			changed = true
		}
	}
	if src.pc && !dst.pc {
		dst.pc = true
		changed = true
	}
	return changed, nil
}

// stackEffect returns (pops, pushes) for an opcode.
func stackEffect(op Op) (int, int) {
	switch op {
	case OpPush, OpLenC, OpLenP, OpLoad, OpIdx, OpLoadC, OpLoadP:
		return 0, 1
	case OpLoadCI, OpLoadPI, OpNeg, OpAbs, OpNot, OpDeclass:
		return 1, 1
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpMin, OpMax,
		OpLt, OpLe, OpGt, OpGe, OpEq, OpNe, OpAnd, OpOr:
		return 2, 1
	case OpDup:
		return 1, 2
	case OpPop, OpStore, OpJz, OpVerdict:
		return 1, 0
	case OpSwap:
		return 2, 2
	case OpOver:
		return 2, 3
	case OpSelect:
		return 3, 1
	case OpHalt, OpJmp, OpLoop, OpEndLoop:
		return 0, 0
	}
	return 0, 0
}

// loopInfo holds matched loop structure.
type loopInfo struct {
	start int // pc of OpLoop
	end   int // pc of OpEndLoop
	count int64
}

// Verify statically checks a program and returns its analysis certificate.
// A verified program is guaranteed to terminate within Analysis.CostBound
// steps, never under- or over-flow its stack, and never let secret inputs
// reach the verdict — or influence control flow — except through DECLASS.
func Verify(p *Program) (*Analysis, error) {
	n := len(p.Code)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty program", ErrTooLarge)
	}
	if n > MaxCode {
		return nil, fmt.Errorf("%w: %d instructions", ErrTooLarge, n)
	}
	if p.Locals < 0 || p.Locals > MaxLocals {
		return nil, fmt.Errorf("%w: %d locals", ErrTooLarge, p.Locals)
	}

	analysis := &Analysis{}

	// Pass A: opcode/argument validity and loop matching.
	loops, nest, err := checkStructure(p, analysis)
	if err != nil {
		return nil, err
	}

	// Jump validity: forward, in range, same nesting level.
	for pc, ins := range p.Code {
		if ins.Op != OpJmp && ins.Op != OpJz {
			continue
		}
		target := pc + 1 + int(ins.Arg)
		if ins.Arg < 0 || target >= n {
			return nil, fmt.Errorf("%w: pc %d -> %d", ErrJumpTarget, pc, target)
		}
		if nest[target] != nest[pc] {
			return nil, fmt.Errorf("%w: pc %d jumps across loop boundary to %d", ErrJumpTarget, pc, target)
		}
		if p.Code[target].Op == OpEndLoop {
			return nil, fmt.Errorf("%w: pc %d jumps onto endloop at %d", ErrJumpTarget, pc, target)
		}
	}

	// Cost bound: instruction count weighted by enclosing loop counts.
	cost, err := costBound(p, loops)
	if err != nil {
		return nil, err
	}
	analysis.CostBound = cost

	// Pass B+C: combined reachability, stack-depth, and taint dataflow.
	if err := dataflow(p, loops, analysis); err != nil {
		return nil, err
	}
	return analysis, nil
}

func checkStructure(p *Program, analysis *Analysis) (map[int]loopInfo, []int, error) {
	n := len(p.Code)
	nest := make([]int, n)
	loops := make(map[int]loopInfo)
	var open []loopInfo
	for pc, ins := range p.Code {
		if ins.Op >= opCount {
			return nil, nil, fmt.Errorf("%w: %d at pc %d", ErrBadOp, ins.Op, pc)
		}
		nest[pc] = len(open)
		switch ins.Op {
		case OpPush:
			// any immediate is fine
		case OpLoadC, OpLoadP:
			if ins.Arg < 0 {
				return nil, nil, fmt.Errorf("%w: negative input index at pc %d", ErrBadArg, pc)
			}
			if ins.Op == OpLoadC {
				analysis.ReadsContribution = true
			} else {
				analysis.ReadsPrivate = true
			}
		case OpLoadCI:
			analysis.ReadsContribution = true
		case OpLoadPI:
			analysis.ReadsPrivate = true
		case OpLoad, OpStore:
			if ins.Arg < 0 || ins.Arg >= int64(p.Locals) {
				return nil, nil, fmt.Errorf("%w: local %d of %d at pc %d", ErrBadArg, ins.Arg, p.Locals, pc)
			}
		case OpIdx:
			if ins.Arg < 0 || ins.Arg >= int64(len(open)) {
				return nil, nil, fmt.Errorf("%w: idx %d with %d enclosing loops at pc %d", ErrBadArg, ins.Arg, len(open), pc)
			}
		case OpLoop:
			if ins.Arg < 0 || ins.Arg > MaxLoopCount {
				return nil, nil, fmt.Errorf("%w: loop count %d at pc %d", ErrBadArg, ins.Arg, pc)
			}
			if len(open) >= MaxNesting {
				return nil, nil, fmt.Errorf("%w: nesting exceeds %d at pc %d", ErrLoopStructure, MaxNesting, pc)
			}
			open = append(open, loopInfo{start: pc, count: ins.Arg})
		case OpEndLoop:
			if len(open) == 0 {
				return nil, nil, fmt.Errorf("%w: endloop without loop at pc %d", ErrLoopStructure, pc)
			}
			li := open[len(open)-1]
			open = open[:len(open)-1]
			li.end = pc
			loops[li.start] = li
			nest[pc] = len(open)
		case OpDeclass:
			analysis.DeclassSites = append(analysis.DeclassSites, pc)
		case OpVerdict:
			analysis.Verdicts = append(analysis.Verdicts, pc)
		}
	}
	if len(open) != 0 {
		return nil, nil, fmt.Errorf("%w: %d unclosed loops", ErrLoopStructure, len(open))
	}
	if len(analysis.Verdicts) == 0 {
		return nil, nil, ErrNoVerdict
	}
	return loops, nest, nil
}

func costBound(p *Program, loops map[int]loopInfo) (int64, error) {
	var total int64
	multiplier := int64(1)
	var stack []int64
	for pc := range p.Code {
		switch p.Code[pc].Op {
		case OpLoop:
			stack = append(stack, multiplier)
			count := loops[pc].count
			// Charge the loop instruction itself once per entry.
			total += multiplier
			if count == 0 {
				multiplier = 0
			} else if multiplier > MaxCost/count {
				return 0, fmt.Errorf("%w: loop at pc %d", ErrCostBound, pc)
			} else {
				multiplier *= count
			}
		case OpEndLoop:
			total += multiplier
			multiplier = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		default:
			total += multiplier
		}
		if total > MaxCost {
			return 0, fmt.Errorf("%w: bound %d exceeds %d", ErrCostBound, total, MaxCost)
		}
	}
	return total, nil
}

// dataflow runs the combined reachability / stack-depth / taint analysis to
// a fixpoint. Loop bodies create the only backward dataflow edges (locals
// mutated by iteration k feed iteration k+1), handled by re-running the
// forward scan until states stabilize.
func dataflow(p *Program, loops map[int]loopInfo, analysis *Analysis) error {
	n := len(p.Code)
	states := make([]absState, n+1) // states[n] = falling off the end

	entry := absState{set: true, locals: make([]bool, p.Locals)}
	if _, err := mergeInto(&states[0], entry, 0); err != nil {
		return err
	}

	// Fixpoint: monotone lattice (taints only flip false->true), so the
	// number of rounds is bounded; cap generously and fail loudly if
	// exceeded (cannot happen for monotone transfer functions).
	maxRounds := 2*(p.Locals+MaxStack) + 4
	for round := 0; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("predicate: taint analysis did not converge (internal error)")
		}
		changed, err := dataflowPass(p, loops, states, analysis)
		if err != nil {
			return err
		}
		if !changed {
			break
		}
	}
	if states[n].set {
		return ErrFallsOffEnd
	}

	// Record the proven max stack depth.
	maxDepth := 0
	for pc := 0; pc < n; pc++ {
		if states[pc].set && states[pc].depth > maxDepth {
			maxDepth = states[pc].depth
		}
	}
	analysis.MaxStackDepth = maxDepth
	return nil
}

func dataflowPass(p *Program, loops map[int]loopInfo, states []absState, analysis *Analysis) (bool, error) {
	n := len(p.Code)
	changed := false
	propagate := func(target int, s absState) error {
		c, err := mergeInto(&states[target], s, target)
		if err != nil {
			return err
		}
		if c {
			changed = true
		}
		return nil
	}

	for pc := 0; pc < n; pc++ {
		in := states[pc]
		if !in.set {
			continue // unreachable (so far)
		}
		ins := p.Code[pc]
		pops, _ := stackEffect(ins.Op)
		if in.depth < pops {
			return false, fmt.Errorf("%w: underflow at pc %d (%s)", ErrStackDepth, pc, ins)
		}
		out := in.clone()

		// Pop operand taints (top of stack is the slice end).
		operands := make([]bool, pops)
		for i := pops - 1; i >= 0; i-- {
			operands[i] = out.stack[len(out.stack)-1]
			out.stack = out.stack[:len(out.stack)-1]
			out.depth--
		}
		push := func(taint bool) {
			out.stack = append(out.stack, taint || out.pc)
			out.depth++
		}
		union := func() bool {
			t := false
			for _, o := range operands {
				t = t || o
			}
			return t
		}

		switch ins.Op {
		case OpHalt:
			continue // no successors
		case OpVerdict:
			if operands[0] {
				return false, fmt.Errorf("%w: at pc %d", ErrTaintedVerdict, pc)
			}
			if in.pc {
				return false, fmt.Errorf("%w: verdict under secret control flow at pc %d", ErrInfoFlow, pc)
			}
			continue // halts
		case OpPush, OpLenC, OpLenP, OpIdx:
			push(false)
		case OpLoadC, OpLoadP, OpLoadCI, OpLoadPI:
			push(true)
		case OpLoad:
			push(out.locals[ins.Arg])
		case OpStore:
			out.locals[ins.Arg] = operands[0] || out.pc
		case OpDeclass:
			push(false)
		case OpDup:
			push(operands[0])
			push(operands[0])
		case OpOver:
			push(operands[0])
			push(operands[1])
			push(operands[0])
		case OpSwap:
			push(operands[1])
			push(operands[0])
		case OpPop:
			// discarded
		case OpJmp:
			if err := propagate(pc+1+int(ins.Arg), out); err != nil {
				return false, err
			}
			continue
		case OpJz:
			if operands[0] {
				// Branching on a secret is an implicit flow. The paper's
				// simple-idiom discipline forbids it: secret-dependent
				// choices must use SELECT so control flow stays public.
				return false, fmt.Errorf("%w: at pc %d", ErrSecretBranch, pc)
			}
			if err := propagate(pc+1+int(ins.Arg), out); err != nil {
				return false, err
			}
			// fallthrough successor handled below
		case OpLoop:
			li := loops[pc]
			// Successor 1: loop body (if count > 0).
			if li.count > 0 {
				if err := propagate(pc+1, out); err != nil {
					return false, err
				}
			}
			// Successor 2: after the loop (count could be zero; also the
			// normal exit). Stack must be balanced, which the EndLoop
			// transfer enforces.
			if err := propagate(li.end+1, out); err != nil {
				return false, err
			}
			continue
		case OpEndLoop:
			// Net-zero stack effect across the body: depth here must match
			// depth at the loop header.
			var header int
			for start, li := range loops {
				if li.end == pc {
					header = start
					break
				}
			}
			if states[header].set && in.depth != states[header].depth {
				return false, fmt.Errorf("%w: loop body at pc %d changes stack depth (%d -> %d)",
					ErrStackDepth, header, states[header].depth, in.depth)
			}
			// Back edge: next iteration sees this state at the body entry.
			if err := propagate(header+1, out); err != nil {
				return false, err
			}
			// Exit edge: after the loop.
			if err := propagate(pc+1, out); err != nil {
				return false, err
			}
			continue
		default:
			// Arithmetic / comparison / logic: result taint is the union.
			push(union())
		}

		if out.depth > MaxStack {
			return false, fmt.Errorf("%w: depth %d exceeds %d at pc %d", ErrStackDepth, out.depth, MaxStack, pc)
		}
		if err := propagate(pc+1, out); err != nil {
			return false, err
		}
	}
	return changed, nil
}
