package predicate

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"glimmers/internal/fixed"
)

func mustRun(t *testing.T, p *Program, contribution, private []int64) *Result {
	t.Helper()
	res, err := Run(p, contribution, private, nil)
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name, err)
	}
	return res
}

func TestTrivialVerdict(t *testing.T) {
	p := NewBuilder("trivial", 0).Push(7).Declass().Verdict().MustBuild()
	if _, err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	res := mustRun(t, p, nil, nil)
	if res.Verdict != 7 {
		t.Fatalf("Verdict = %d, want 7", res.Verdict)
	}
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		name string
		emit func(*Builder) *Builder
		want int64
	}{
		{"add", func(b *Builder) *Builder { return b.Push(3).Push(4).Add() }, 7},
		{"sub", func(b *Builder) *Builder { return b.Push(3).Push(4).Sub() }, -1},
		{"mul", func(b *Builder) *Builder { return b.Push(3).Push(4).Mul() }, 12},
		{"div", func(b *Builder) *Builder { return b.Push(9).Push(4).Div() }, 2},
		{"mod", func(b *Builder) *Builder { return b.Push(9).Push(4).Mod() }, 1},
		{"neg", func(b *Builder) *Builder { return b.Push(3).Neg() }, -3},
		{"abs", func(b *Builder) *Builder { return b.Push(-3).Abs() }, 3},
		{"min", func(b *Builder) *Builder { return b.Push(3).Push(4).Min() }, 3},
		{"max", func(b *Builder) *Builder { return b.Push(3).Push(4).Max() }, 4},
		{"lt", func(b *Builder) *Builder { return b.Push(3).Push(4).Lt() }, 1},
		{"le", func(b *Builder) *Builder { return b.Push(4).Push(4).Le() }, 1},
		{"gt", func(b *Builder) *Builder { return b.Push(3).Push(4).Gt() }, 0},
		{"ge", func(b *Builder) *Builder { return b.Push(4).Push(4).Ge() }, 1},
		{"eq", func(b *Builder) *Builder { return b.Push(4).Push(4).Eq() }, 1},
		{"ne", func(b *Builder) *Builder { return b.Push(4).Push(4).Ne() }, 0},
		{"and", func(b *Builder) *Builder { return b.Push(2).Push(3).And() }, 1},
		{"and-zero", func(b *Builder) *Builder { return b.Push(2).Push(0).And() }, 0},
		{"or", func(b *Builder) *Builder { return b.Push(0).Push(3).Or() }, 1},
		{"not", func(b *Builder) *Builder { return b.Push(0).Not() }, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := c.emit(NewBuilder(c.name, 0)).Declass().Verdict().MustBuild()
			if _, err := Verify(p); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if res := mustRun(t, p, nil, nil); res.Verdict != c.want {
				t.Fatalf("Verdict = %d, want %d", res.Verdict, c.want)
			}
		})
	}
}

func TestStackManipulation(t *testing.T) {
	// over: a b -> a b a ; then sub: a b-a? compute (a b a) sub -> a (b-a)
	p := NewBuilder("stack", 0).
		Push(10).Push(3). // 10 3
		Over().           // 10 3 10
		Sub().            // 10 -7
		Swap().           // -7 10
		Pop().            // -7
		Dup().Add().      // -14
		Declass().Verdict().MustBuild()
	if res := mustRun(t, p, nil, nil); res.Verdict != -14 {
		t.Fatalf("Verdict = %d, want -14", res.Verdict)
	}
}

func TestSelect(t *testing.T) {
	mk := func(cond int64) *Program {
		return NewBuilder("sel", 0).
			Push(111).Push(222).Push(cond).Select().
			Declass().Verdict().MustBuild()
	}
	if res := mustRun(t, mk(1), nil, nil); res.Verdict != 111 {
		t.Fatalf("select true = %d, want 111", res.Verdict)
	}
	if res := mustRun(t, mk(0), nil, nil); res.Verdict != 222 {
		t.Fatalf("select false = %d, want 222", res.Verdict)
	}
}

func TestLoopSemantics(t *testing.T) {
	// Sum of loop indices 0..9 = 45.
	p := NewBuilder("loopsum", 1)
	p.Push(0).Store(0)
	p.Loop(10, func(b *Builder) {
		b.Idx(0).Load(0).Add().Store(0)
	})
	prog := p.Load(0).Declass().Verdict().MustBuild()
	if _, err := Verify(prog); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res := mustRun(t, prog, nil, nil); res.Verdict != 45 {
		t.Fatalf("Verdict = %d, want 45", res.Verdict)
	}
}

func TestNestedLoopIdx(t *testing.T) {
	// sum over i in 0..2, j in 0..3 of (i*10 + j) = 4*(0+10+20) + 3*(0+1+2+3) = 120+18=138
	b := NewBuilder("nest", 1)
	b.Push(0).Store(0)
	b.Loop(3, func(b *Builder) {
		b.Loop(4, func(b *Builder) {
			b.Idx(1).Push(10).Mul().Idx(0).Add().Load(0).Add().Store(0)
		})
	})
	p := b.Load(0).Declass().Verdict().MustBuild()
	if _, err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res := mustRun(t, p, nil, nil); res.Verdict != 138 {
		t.Fatalf("Verdict = %d, want 138", res.Verdict)
	}
}

func TestZeroCountLoopSkipsBody(t *testing.T) {
	b := NewBuilder("zero", 1)
	b.Push(42).Store(0)
	b.Loop(0, func(b *Builder) {
		b.Push(0).Store(0)
	})
	p := b.Load(0).Declass().Verdict().MustBuild()
	if _, err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res := mustRun(t, p, nil, nil); res.Verdict != 42 {
		t.Fatalf("Verdict = %d, want 42", res.Verdict)
	}
}

func TestForwardJumps(t *testing.T) {
	// if contribution length == 0 { 5 } else { 9 } via public branch
	b := NewBuilder("jump", 0)
	elseL := b.NewLabel()
	endL := b.NewLabel()
	b.LenC().Push(0).Eq()
	b.Jz(elseL)
	b.Push(5).Jmp(endL)
	b.Bind(elseL)
	b.Push(9)
	b.Bind(endL)
	p := b.Declass().Verdict().MustBuild()
	if _, err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res := mustRun(t, p, nil, nil); res.Verdict != 5 {
		t.Fatalf("empty input: Verdict = %d, want 5", res.Verdict)
	}
	if res := mustRun(t, p, []int64{1}, nil); res.Verdict != 9 {
		t.Fatalf("non-empty input: Verdict = %d, want 9", res.Verdict)
	}
}

func TestInputBanks(t *testing.T) {
	p := NewBuilder("banks", 0).
		LoadC(1).LoadP(0).Add().Declass().Verdict().MustBuild()
	res := mustRun(t, p, []int64{10, 20}, []int64{5})
	if res.Verdict != 25 {
		t.Fatalf("Verdict = %d, want 25", res.Verdict)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name    string
		prog    *Program
		contrib []int64
		want    error
	}{
		{"div-by-zero", NewBuilder("d", 0).Push(1).Push(0).Div().Declass().Verdict().MustBuild(), nil, ErrDivByZero},
		{"mod-by-zero", NewBuilder("m", 0).Push(1).Push(0).Mod().Declass().Verdict().MustBuild(), nil, ErrDivByZero},
		{"index-static", NewBuilder("i", 0).LoadC(3).Declass().Verdict().MustBuild(), []int64{1}, ErrIndexRange},
		{"index-dynamic", NewBuilder("id", 0).Push(9).LoadCI().Declass().Verdict().MustBuild(), []int64{1}, ErrIndexRange},
		{"index-negative", NewBuilder("in", 0).Push(-1).LoadCI().Declass().Verdict().MustBuild(), []int64{1}, ErrIndexRange},
		{"halt", NewBuilder("h", 0).Halt().MustBuild(), nil, ErrHaltNoVerdict},
		{"underflow", &Program{Name: "u", Code: []Instr{{Op: OpAdd}}}, nil, ErrStackDepth},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(c.prog, c.contrib, nil, nil)
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestDynamicTaintEnforcement(t *testing.T) {
	// Even without static verification, a secret cannot reach the verdict.
	leak := NewBuilder("leak", 0).LoadC(0).Verdict().MustBuild()
	if _, err := Run(leak, []int64{538}, nil, nil); !errors.Is(err, ErrTaintedVerdict) {
		t.Fatalf("err = %v, want ErrTaintedVerdict", err)
	}
	// Nor can control flow branch on a secret.
	branch := NewBuilder("branch", 0)
	l := branch.NewLabel()
	branch.LoadC(0).Jz(l).Bind(l)
	p := branch.Push(1).Declass().Verdict().MustBuild()
	if _, err := Run(p, []int64{1}, nil, nil); !errors.Is(err, ErrSecretBranch) {
		t.Fatalf("err = %v, want ErrSecretBranch", err)
	}
	// Taint propagates through arithmetic and locals.
	viaLocal := NewBuilder("vialocal", 1).
		LoadC(0).Push(1).Add().Store(0).Load(0).Verdict().MustBuild()
	if _, err := Run(viaLocal, []int64{1}, nil, nil); !errors.Is(err, ErrTaintedVerdict) {
		t.Fatalf("err = %v, want ErrTaintedVerdict", err)
	}
	// Declass clears taint.
	ok := NewBuilder("ok", 0).LoadC(0).Declass().Verdict().MustBuild()
	if res := mustRun(t, ok, []int64{5}, nil); res.Verdict != 5 {
		t.Fatalf("Verdict = %d, want 5", res.Verdict)
	}
}

func TestStepBudget(t *testing.T) {
	b := NewBuilder("busy", 0)
	b.Loop(1000, func(b *Builder) { b.Push(0).Pop() })
	p := b.Push(1).Declass().Verdict().MustBuild()
	if _, err := Run(p, nil, nil, &Options{MaxSteps: 10}); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	if _, err := Run(p, nil, nil, nil); err != nil {
		t.Fatalf("default budget: %v", err)
	}
}

func TestVerifyStaticTaint(t *testing.T) {
	// Static verification must reject the same leaks the runtime rejects.
	leak := NewBuilder("leak", 0).LoadC(0).Verdict().MustBuild()
	if _, err := Verify(leak); !errors.Is(err, ErrTaintedVerdict) {
		t.Fatalf("err = %v, want ErrTaintedVerdict", err)
	}
	branch := NewBuilder("branch", 0)
	l := branch.NewLabel()
	branch.LoadP(0).Jz(l).Bind(l)
	p := branch.Push(1).Declass().Verdict().MustBuild()
	if _, err := Verify(p); !errors.Is(err, ErrSecretBranch) {
		t.Fatalf("err = %v, want ErrSecretBranch", err)
	}
	// Taint through a local across loop iterations: iteration 1 taints the
	// local, iteration 2 reads it — the fixpoint must catch the flow.
	b := NewBuilder("loop-taint", 1)
	b.Push(0).Store(0)
	b.Loop(2, func(b *Builder) {
		b.Load(0).LoadC(0).Add().Store(0)
	})
	lp := b.Load(0).Verdict().MustBuild()
	if _, err := Verify(lp); !errors.Is(err, ErrTaintedVerdict) {
		t.Fatalf("loop taint: err = %v, want ErrTaintedVerdict", err)
	}
}

func TestVerifyStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want error
	}{
		{"empty", &Program{Name: "e"}, ErrTooLarge},
		{"too-many-locals", &Program{Name: "l", Locals: MaxLocals + 1, Code: []Instr{{Op: OpVerdict}}}, ErrTooLarge},
		{"bad-op", &Program{Name: "b", Code: []Instr{{Op: opCount}, {Op: OpVerdict}}}, ErrBadOp},
		{"bad-local", &Program{Name: "bl", Code: []Instr{{Op: OpLoad, Arg: 0}, {Op: OpVerdict}}}, ErrBadArg},
		{"idx-no-loop", &Program{Name: "ix", Code: []Instr{{Op: OpIdx}, {Op: OpVerdict}}}, ErrBadArg},
		{"unclosed-loop", &Program{Name: "ul", Code: []Instr{{Op: OpLoop, Arg: 1}, {Op: OpVerdict}}}, ErrLoopStructure},
		{"stray-endloop", &Program{Name: "se", Code: []Instr{{Op: OpEndLoop}, {Op: OpVerdict}}}, ErrLoopStructure},
		{"loop-count-negative", &Program{Name: "ln", Code: []Instr{{Op: OpLoop, Arg: -1}, {Op: OpEndLoop}, {Op: OpVerdict}}}, ErrBadArg},
		{"jump-backward", &Program{Name: "jb", Code: []Instr{{Op: OpPush, Arg: 1}, {Op: OpJmp, Arg: -2}, {Op: OpVerdict}}}, ErrJumpTarget},
		{"jump-out-of-range", &Program{Name: "jo", Code: []Instr{{Op: OpJmp, Arg: 100}, {Op: OpVerdict}}}, ErrJumpTarget},
		{"no-verdict", &Program{Name: "nv", Code: []Instr{{Op: OpHalt}}}, ErrNoVerdict},
		{"falls-off-end", &Program{Name: "fe", Code: []Instr{
			{Op: OpLenC},
			{Op: OpJz, Arg: 3}, // empty input -> pc 5, which runs off the end
			{Op: OpPush, Arg: 1},
			{Op: OpDeclass},
			{Op: OpVerdict},
			{Op: OpPush, Arg: 1},
			{Op: OpPop},
		}}, ErrFallsOffEnd},
		{"underflow", &Program{Name: "uf", Code: []Instr{{Op: OpAdd}, {Op: OpVerdict}}}, ErrStackDepth},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Verify(c.prog); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestVerifyJumpAcrossLoopBoundary(t *testing.T) {
	// jz jumping from outside into a loop body.
	p := &Program{Name: "cross", Code: []Instr{
		{Op: OpPush, Arg: 1},
		{Op: OpJz, Arg: 2}, // target = pc 4, inside the loop body
		{Op: OpLoop, Arg: 2},
		{Op: OpPush, Arg: 0},
		{Op: OpPop},
		{Op: OpEndLoop},
		{Op: OpPush, Arg: 1},
		{Op: OpDeclass},
		{Op: OpVerdict},
	}}
	if _, err := Verify(p); !errors.Is(err, ErrJumpTarget) {
		t.Fatalf("err = %v, want ErrJumpTarget", err)
	}
}

func TestVerifyLoopBodyMustBeStackNeutral(t *testing.T) {
	p := &Program{Name: "grow", Code: []Instr{
		{Op: OpLoop, Arg: 3},
		{Op: OpPush, Arg: 1}, // body grows the stack each iteration
		{Op: OpEndLoop},
		{Op: OpPush, Arg: 1},
		{Op: OpDeclass},
		{Op: OpVerdict},
	}}
	if _, err := Verify(p); !errors.Is(err, ErrStackDepth) {
		t.Fatalf("err = %v, want ErrStackDepth", err)
	}
}

func TestVerifyDepthMismatchAtJoin(t *testing.T) {
	// Two paths reach the same pc with different stack depths.
	b := NewBuilder("join", 0)
	l := b.NewLabel()
	b.LenC().Push(0).Eq()
	b.Jz(l)
	b.Push(1) // only on fallthrough path
	b.Bind(l)
	p := b.Push(1).Declass().Verdict().MustBuild()
	if _, err := Verify(p); !errors.Is(err, ErrStackDepth) {
		t.Fatalf("err = %v, want ErrStackDepth", err)
	}
}

func TestVerifyCostBound(t *testing.T) {
	// Deeply nested max-count loops exceed the budget.
	b := NewBuilder("expensive", 0)
	b.Loop(MaxLoopCount, func(b *Builder) {
		b.Loop(MaxLoopCount, func(b *Builder) {
			b.Push(0).Pop()
		})
	})
	p := b.Push(1).Declass().Verdict().MustBuild()
	if _, err := Verify(p); !errors.Is(err, ErrCostBound) {
		t.Fatalf("err = %v, want ErrCostBound", err)
	}
}

func TestVerifyCostBoundCoversActualSteps(t *testing.T) {
	progs := []*Program{
		UnitRangeCheck("rc", 8),
		SumBound("sb", 8, 0, 100),
		CrossCheck("cc", 8, 10),
		ThresholdScore("ts", []int64{1, 2, 3}, 10),
		AlwaysValid("av"),
	}
	for _, p := range progs {
		a, err := Verify(p)
		if err != nil {
			t.Fatalf("Verify(%s): %v", p.Name, err)
		}
		contribution := make([]int64, 8)
		private := make([]int64, 8)
		if p.Name == "ts" {
			private = []int64{1, 1, 1}
		}
		res, err := Run(p, contribution, private, nil)
		if err != nil {
			t.Fatalf("Run(%s): %v", p.Name, err)
		}
		if res.Steps > a.CostBound {
			t.Errorf("%s: actual steps %d exceed proven bound %d", p.Name, res.Steps, a.CostBound)
		}
	}
}

func TestAnalysisFields(t *testing.T) {
	p := UnitRangeCheck("rc", 4)
	a, err := Verify(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.DeclassSites) != 1 {
		t.Errorf("DeclassSites = %v, want exactly 1", a.DeclassSites)
	}
	if len(a.Verdicts) != 1 {
		t.Errorf("Verdicts = %v, want exactly 1", a.Verdicts)
	}
	if !a.ReadsContribution {
		t.Error("ReadsContribution = false")
	}
	if a.ReadsPrivate {
		t.Error("ReadsPrivate = true for contribution-only predicate")
	}
	if a.MaxStackDepth == 0 || a.MaxStackDepth > MaxStack {
		t.Errorf("MaxStackDepth = %d", a.MaxStackDepth)
	}
	ts := ThresholdScore("ts", []int64{1}, 0)
	at, err := Verify(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !at.ReadsPrivate {
		t.Error("ThresholdScore should read private bank")
	}
}

func TestRangeCheckBlocksThe538Attack(t *testing.T) {
	// The paper's Figure 1d: a weight of 538 where [0,1] is valid.
	dim := 4
	p := UnitRangeCheck("fig1d", dim)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	honest := []int64{0, fixed.Scale / 2, fixed.Scale, fixed.Scale / 10}
	if res := mustRun(t, p, honest, nil); res.Verdict != 1 {
		t.Fatalf("honest contribution rejected: %d", res.Verdict)
	}
	malicious := []int64{0, fixed.Scale / 2, 538 * fixed.Scale, fixed.Scale / 10}
	if res := mustRun(t, p, malicious, nil); res.Verdict != 0 {
		t.Fatalf("538 attack passed validation: %d", res.Verdict)
	}
	negative := []int64{-1, 0, 0, 0}
	if res := mustRun(t, p, negative, nil); res.Verdict != 0 {
		t.Fatalf("negative weight passed validation: %d", res.Verdict)
	}
}

func TestRangeCheckRejectsWrongDimension(t *testing.T) {
	p := UnitRangeCheck("dim", 3)
	// Longer vector: length check fails even though a loop over 3 would
	// pass.
	long := []int64{0, 0, 0, 0}
	if res := mustRun(t, p, long, nil); res.Verdict != 0 {
		t.Fatalf("oversized contribution accepted: %d", res.Verdict)
	}
	// Shorter vector: the indexed load faults, which the Glimmer treats as
	// invalid.
	if _, err := Run(p, []int64{0, 0}, nil, nil); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("short contribution: err = %v, want ErrIndexRange", err)
	}
}

func TestRangeCheckBoundaries(t *testing.T) {
	p := RangeCheck("bounds", 1, 10, 20)
	for _, c := range []struct {
		v    int64
		want int64
	}{{9, 0}, {10, 1}, {15, 1}, {20, 1}, {21, 0}} {
		if res := mustRun(t, p, []int64{c.v}, nil); res.Verdict != c.want {
			t.Errorf("value %d: verdict %d, want %d", c.v, res.Verdict, c.want)
		}
	}
}

func TestSumBound(t *testing.T) {
	p := SumBound("sum", 3, 5, 10)
	if res := mustRun(t, p, []int64{2, 3, 4}, nil); res.Verdict != 1 {
		t.Errorf("sum 9 in [5,10] rejected")
	}
	if res := mustRun(t, p, []int64{1, 1, 1}, nil); res.Verdict != 0 {
		t.Errorf("sum 3 below bound accepted")
	}
	if res := mustRun(t, p, []int64{5, 5, 5}, nil); res.Verdict != 0 {
		t.Errorf("sum 15 above bound accepted")
	}
}

func TestCrossCheck(t *testing.T) {
	p := CrossCheck("cc", 3, 5)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	claimed := []int64{100, 200, 300}
	observed := []int64{102, 198, 300}
	if res := mustRun(t, p, claimed, observed); res.Verdict != 1 {
		t.Error("within-tolerance corroboration rejected")
	}
	fabricated := []int64{100, 200, 400}
	if res := mustRun(t, p, fabricated, observed); res.Verdict != 0 {
		t.Error("fabricated contribution accepted")
	}
}

func TestThresholdScore(t *testing.T) {
	p := ThresholdScore("bot", []int64{2, -1, 3}, 10)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	// 2*4 - 1*1 + 3*1 = 10 >= 10 -> 1
	if res := mustRun(t, p, nil, []int64{4, 1, 1}); res.Verdict != 1 {
		t.Error("score at threshold rejected")
	}
	// 2*1 - 1*0 + 3*2 = 8 < 10 -> 0
	if res := mustRun(t, p, nil, []int64{1, 0, 2}); res.Verdict != 0 {
		t.Error("score under threshold accepted")
	}
	// Extra signals rejected by length check.
	if res := mustRun(t, p, nil, []int64{4, 1, 1, 9}); res.Verdict != 0 {
		t.Error("padded signal vector accepted")
	}
}

func TestTraceCorroboration(t *testing.T) {
	// Branch trace equality: identical public control flow gives identical
	// traces; divergent control flow (different input lengths) differs.
	b := NewBuilder("traced", 0)
	elseL := b.NewLabel()
	endL := b.NewLabel()
	b.LenC().Push(2).Eq()
	b.Jz(elseL)
	b.Push(1).Jmp(endL)
	b.Bind(elseL)
	b.Push(0)
	b.Bind(endL)
	p := b.Declass().Verdict().MustBuild()

	run := func(contrib []int64) *Trace {
		res, err := Run(p, contrib, nil, &Options{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	t1 := run([]int64{1, 2})
	t2 := run([]int64{7, 8})
	t3 := run([]int64{1})
	if !t1.Equal(t2) {
		t.Error("same control flow produced different traces")
	}
	if t1.Equal(t3) {
		t.Error("divergent control flow produced identical traces")
	}
	if t1.Len() != 1 {
		t.Errorf("trace length = %d, want 1", t1.Len())
	}
}

func TestTraceNilHandling(t *testing.T) {
	var nilTrace *Trace
	if !nilTrace.Equal(nil) {
		t.Error("nil traces should be equal")
	}
	p := AlwaysValid("av")
	res, err := Run(p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace recorded without RecordTrace")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("unbound", 0)
	l := b.NewLabel()
	b.Jmp(l).Push(1).Declass().Verdict()
	if _, err := b.Build(); err == nil {
		t.Error("unbound label accepted")
	}
	b2 := NewBuilder("double", 0)
	l2 := b2.NewLabel()
	b2.Bind(l2).Bind(l2)
	if _, err := b2.Build(); err == nil {
		t.Error("double bind accepted")
	}
}

const rangeCheckAsm = `
; range check over 2 elements in [0, 100]
push 1
store 0
loop 2
  idx 0
  loadci
  dup
  push 0
  ge
  swap
  push 100
  le
  and
  load 0
  and
  store 0
endloop
load 0
declass
verdict
`

func TestAssemble(t *testing.T) {
	p, err := Assemble("asm-range", rangeCheckAsm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res := mustRun(t, p, []int64{50, 100}, nil); res.Verdict != 1 {
		t.Error("valid input rejected")
	}
	if res := mustRun(t, p, []int64{50, 101}, nil); res.Verdict != 0 {
		t.Error("out-of-range input accepted")
	}
}

func TestAssembleLabels(t *testing.T) {
	src := `
lenc
push 0
eq
jz @else
push 5
jmp @end
else: push 9
end: declass
verdict
`
	p, err := Assemble("lbl", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res := mustRun(t, p, nil, nil); res.Verdict != 5 {
		t.Fatalf("Verdict = %d, want 5", res.Verdict)
	}
	if res := mustRun(t, p, []int64{1}, nil); res.Verdict != 9 {
		t.Fatalf("Verdict = %d, want 9", res.Verdict)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "frobnicate",
		"missing operand":  "push",
		"extra operand":    "add 3",
		"bad operand":      "push abc",
		"undefined label":  "jmp @nowhere\nverdict",
		"duplicate label":  "a:\npush 1\na:\nverdict",
		"label on push":    "push @lbl\nlbl: verdict",
	}
	for name, src := range cases {
		if _, err := Assemble("bad", src, 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	progs := []*Program{
		UnitRangeCheck("rc", 3),
		SumBound("sb", 2, 0, 10),
		ThresholdScore("ts", []int64{1, 2}, 5),
	}
	for _, p := range progs {
		asm := Disassemble(p)
		back, err := Assemble(p.Name, asm, p.Locals)
		if err != nil {
			t.Fatalf("%s: reassemble: %v\n%s", p.Name, err, asm)
		}
		if len(back.Code) != len(p.Code) {
			t.Fatalf("%s: code length %d != %d", p.Name, len(back.Code), len(p.Code))
		}
		for i := range p.Code {
			if back.Code[i] != p.Code[i] {
				t.Fatalf("%s: instr %d: %v != %v", p.Name, i, back.Code[i], p.Code[i])
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := UnitRangeCheck("codec", 7)
	back, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.Locals != p.Locals || len(back.Code) != len(p.Code) {
		t.Fatal("metadata corrupted")
	}
	for i := range p.Code {
		if back.Code[i] != p.Code[i] {
			t.Fatalf("instr %d corrupted", i)
		}
	}
	if Digest(p) != Digest(back) {
		t.Fatal("digest changed across round trip")
	}
}

func TestDigestSensitivity(t *testing.T) {
	a := Digest(UnitRangeCheck("p", 4))
	b := Digest(UnitRangeCheck("p", 5))
	c := Digest(UnitRangeCheck("q", 4))
	if a == b || a == c {
		t.Fatal("digest collision across distinct programs")
	}
}

func TestEncryptedPredicate(t *testing.T) {
	p := ThresholdScore("confidential", []int64{3, 1, 4}, 7)
	var key [32]byte
	copy(key[:], "0123456789abcdef0123456789abcdef")
	container, err := Encrypt(p, key, []byte("svc-v1"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decrypt(container, key, []byte("svc-v1"))
	if err != nil {
		t.Fatal(err)
	}
	if Digest(back) != Digest(p) {
		t.Fatal("decrypted program differs")
	}
	var wrong [32]byte
	if _, err := Decrypt(container, wrong, []byte("svc-v1")); err == nil {
		t.Fatal("wrong key decrypted container")
	}
	if _, err := Decrypt(container, key, []byte("svc-v2")); err == nil {
		t.Fatal("wrong context decrypted container")
	}
	container[len(container)-1] ^= 1
	if _, err := Decrypt(container, key, []byte("svc-v1")); err == nil {
		t.Fatal("tampered container decrypted")
	}
}

// Property: the RangeCheck predicate agrees with a native Go range check on
// random vectors.
func TestQuickRangeCheckAgreesWithNative(t *testing.T) {
	const dim = 6
	p := RangeCheck("quick", dim, -1000, 1000)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	f := func(raw [dim]int16) bool {
		contribution := make([]int64, dim)
		want := int64(1)
		for i, v := range raw {
			contribution[i] = int64(v)
			if v < -1000 || v > 1000 {
				want = 0
			}
		}
		res, err := Run(p, contribution, nil, nil)
		return err == nil && res.Verdict == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode is the identity on stdlib-shaped programs.
func TestQuickCodecIdentity(t *testing.T) {
	f := func(dim uint8, lo, hi int16) bool {
		d := int(dim%32) + 1
		p := RangeCheck("q", d, int64(lo), int64(hi))
		back, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		return Digest(back) == Digest(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: verified programs never exceed their proven cost bound at
// runtime, for any input.
func TestQuickCostBoundIsSound(t *testing.T) {
	p := UnitRangeCheck("q", 4)
	a, err := Verify(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [4]int64) bool {
		res, err := Run(p, vals[:], nil, nil)
		if err != nil {
			return true // runtime faults are acceptable; divergence is not
		}
		return res.Steps <= a.CostBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpStringCoverage(t *testing.T) {
	for op := OpHalt; op < opCount; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown opcode formatting")
	}
}
