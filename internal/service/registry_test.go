package service

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// tenantContribution fabricates an encoded contribution for a tenant,
// signed when key is non-nil, with a distinct vector per index.
func tenantContribution(t testing.TB, key *xcrypto.SigningKey, name string, round uint64, dim, i int) []byte {
	t.Helper()
	sc := glimmer.SignedContribution{
		ServiceName: name,
		Round:       round,
		Measurement: tee.Measurement{1},
		Blinded:     make(fixed.Vector, dim),
		Confidence:  1,
	}
	for j := range sc.Blinded {
		sc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + round*31 + uint64(j))
	}
	if key != nil {
		sig, err := key.Sign(sc.SignedBytes())
		if err != nil {
			t.Fatal(err)
		}
		sc.Signature = sig
	}
	return glimmer.EncodeSignedContribution(sc)
}

// twoTenantRegistry assembles a registry with two signing tenants.
func twoTenantRegistry(t testing.TB) (*Registry, map[string]*xcrypto.SigningKey) {
	t.Helper()
	r := NewRegistry(0)
	keys := make(map[string]*xcrypto.SigningKey)
	for _, spec := range []struct {
		name string
		dim  int
	}{{"alpha.example", 4}, {"beta.example", 2}} {
		key, err := xcrypto.NewSigningKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[spec.name] = key
		if _, err := r.AddTenant(TenantConfig{
			Name:   spec.name,
			Verify: key.Public(),
			Dim:    spec.dim,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r, keys
}

func TestRegistryRoutesBatchAcrossTenants(t *testing.T) {
	r, keys := twoTenantRegistry(t)
	var raws [][]byte
	// Interleave the two tenants plus one unknown tenant and garbage.
	for i := 0; i < 4; i++ {
		raws = append(raws, tenantContribution(t, keys["alpha.example"], "alpha.example", 1, 4, i))
		raws = append(raws, tenantContribution(t, keys["beta.example"], "beta.example", 1, 2, i))
	}
	raws = append(raws,
		tenantContribution(t, keys["alpha.example"], "ghost.example", 1, 4, 0),
		[]byte("garbage"))

	accepted, errs := r.IngestBatch(raws)
	if accepted != 8 {
		t.Fatalf("accepted = %d, want 8", accepted)
	}
	for i := 0; i < 8; i++ {
		if errs[i] != nil {
			t.Fatalf("item %d refused: %v", i, errs[i])
		}
	}
	if !errors.Is(errs[8], ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", errs[8])
	}
	if errs[9] == nil {
		t.Fatal("garbage accepted")
	}
	if got := r.Rejected(); got != 2 {
		t.Fatalf("registry rejected = %d, want 2", got)
	}
	for name, wantDim := range map[string]int{"alpha.example": 4, "beta.example": 2} {
		tn, ok := r.Tenant(name)
		if !ok {
			t.Fatalf("tenant %s missing", name)
		}
		p, ok := tn.Manager().Lookup(1)
		if !ok || p.Count() != 4 {
			t.Fatalf("tenant %s round 1 count = %v, want 4", name, p)
		}
		if tn.Config().Dim != wantDim {
			t.Fatalf("tenant %s dim = %d", name, tn.Config().Dim)
		}
	}
}

// TestRegistryCrossTenantForgery pins the isolation guarantee behind
// routing: one tenant's endorsed contribution re-encoded under another
// tenant's name routes there and dies on the signature (which covers the
// name), and the victim's sums never move.
func TestRegistryCrossTenantForgery(t *testing.T) {
	// Two tenants of identical shape, so the splice below fails on the
	// signature alone — the strongest form of the isolation claim.
	r := NewRegistry(0)
	keys := make(map[string]*xcrypto.SigningKey)
	for _, name := range []string{"alpha.example", "beta.example"} {
		key, err := xcrypto.NewSigningKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[name] = key
		if _, err := r.AddTenant(TenantConfig{Name: name, Verify: key.Public(), Dim: 2}); err != nil {
			t.Fatal(err)
		}
	}
	raw := tenantContribution(t, keys["alpha.example"], "alpha.example", 1, 2, 7)
	if err := r.Ingest(raw); err != nil {
		t.Fatalf("setup: %v", err)
	}
	// Alpha's endorsed contribution respelled under beta's name: routing
	// must deliver it to beta, whose signature check (the signature covers
	// the name) must kill it without creating any state.
	sc, err := glimmer.DecodeSignedContribution(raw)
	if err != nil {
		t.Fatal(err)
	}
	sc.ServiceName = "beta.example"
	spliced := glimmer.EncodeSignedContribution(sc)
	if err := r.Ingest(spliced); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("spliced contribution err = %v, want ErrBadSignature", err)
	}
	beta, _ := r.Tenant("beta.example")
	if _, ok := beta.Manager().Lookup(1); ok {
		t.Fatal("forged contribution created a round in the victim tenant")
	}
	if got := beta.Manager().Rejected(); got != 1 {
		t.Fatalf("victim tenant rejected = %d, want 1", got)
	}
}

func TestRegistryAddTenantValidation(t *testing.T) {
	r := NewRegistry(0)
	if _, err := r.AddTenant(TenantConfig{Name: "", Dim: 1}); err == nil {
		t.Error("empty tenant name accepted")
	}
	if _, err := r.AddTenant(TenantConfig{Name: "a.example", Dim: 0}); err == nil {
		t.Error("non-positive dimension accepted")
	}
	if _, err := r.AddTenant(TenantConfig{Name: "a.example", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddTenant(TenantConfig{Name: "a.example", Dim: 2}); !errors.Is(err, ErrTenantExists) {
		t.Errorf("duplicate tenant err = %v, want ErrTenantExists", err)
	}
	names := r.Tenants()
	if len(names) != 1 || names[0].Name() != "a.example" {
		t.Errorf("tenants = %v", names)
	}
}

func TestRegistryResolveHost(t *testing.T) {
	r := NewRegistry(0)
	hostCfg := glimmer.Config{ServiceName: "a.example", Dim: 3}
	if _, err := r.AddTenant(TenantConfig{Name: "a.example", Dim: 3, Glimmer: hostCfg}); err != nil {
		t.Fatal(err)
	}
	// Sole tenant: both its name and the legacy empty hello resolve.
	for _, name := range []string{"a.example", ""} {
		cfg, _, err := r.ResolveHost(name)
		if err != nil || cfg.ServiceName != "a.example" {
			t.Fatalf("ResolveHost(%q) = (%v, %v)", name, cfg, err)
		}
	}
	if _, _, err := r.ResolveHost("ghost.example"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown host err = %v", err)
	}
	// An ingest-only tenant does not host user sessions.
	if _, err := r.AddTenant(TenantConfig{Name: "ingest.example", Dim: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ResolveHost("ingest.example"); err == nil {
		t.Fatal("ingest-only tenant resolved as a host")
	}
	// With two tenants, the legacy empty hello is ambiguous.
	if _, _, err := r.ResolveHost(""); err == nil {
		t.Fatal("empty hello resolved against multiple tenants")
	}
}

// budgetRegistry builds a registry with two unverified (Verify == nil)
// tenants and a tiny shared budget, for eviction tests.
func budgetRegistry(t testing.TB, budget int) *Registry {
	t.Helper()
	r := NewRegistry(budget)
	for _, name := range []string{"a.example", "b.example"} {
		if _, err := r.AddTenant(TenantConfig{Name: name, Dim: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestBudgetCrossTenantFairEviction(t *testing.T) {
	r := budgetRegistry(t, 4)
	// Tenant a fills the whole budget with open rounds.
	for round := uint64(1); round <= 4; round++ {
		if err := r.Ingest(tenantContribution(t, nil, "a.example", round, 1, int(round))); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if got := r.Budget().Live(); got != 4 {
		t.Fatalf("budget live = %d, want 4", got)
	}
	// Tenant b's first round must evict from the heaviest tenant (a), and
	// among a's equally filled open rounds the highest round number loses.
	if err := r.Ingest(tenantContribution(t, nil, "b.example", 1, 1, 9)); err != nil {
		t.Fatalf("b admission: %v", err)
	}
	a, _ := r.Tenant("a.example")
	b, _ := r.Tenant("b.example")
	if rounds := a.Manager().Rounds(); len(rounds) != 3 || rounds[2] == 4 {
		t.Fatalf("tenant a rounds after eviction = %v, want [1 2 3]", rounds)
	}
	if p, ok := b.Manager().Lookup(1); !ok || p.Count() != 1 {
		t.Fatal("tenant b round not admitted after cross-tenant eviction")
	}
	if got := r.Budget().Live(); got != 4 {
		t.Fatalf("budget live = %d after eviction, want 4", got)
	}
}

// TestBudgetOutOfWindowRefusalEvictsNothing pins the admission ordering:
// a contribution refused by the RoundWindow must never touch the shared
// budget — otherwise a vetted client spraying out-of-window rounds could
// evict other tenants' rounds without ever creating one of its own.
func TestBudgetOutOfWindowRefusalEvictsNothing(t *testing.T) {
	r := NewRegistry(3)
	if _, err := r.AddTenant(TenantConfig{Name: "a.example", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	windowed, err := r.AddTenant(TenantConfig{Name: "b.example", Dim: 1, RoundWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a holds two open rounds; tenant b anchors its window with an
	// established round (two accepted contributions). Budget is now full.
	for round := uint64(1); round <= 2; round++ {
		if err := r.Ingest(tenantContribution(t, nil, "a.example", round, 1, int(round))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := r.Ingest(tenantContribution(t, nil, "b.example", 1, 1, 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Spraying far-out-of-window rounds at b must be refused before the
	// budget round-trip: nothing evicted anywhere.
	for round := uint64(1000); round < 1010; round++ {
		if err := r.Ingest(tenantContribution(t, nil, "b.example", round, 1, int(round))); !errors.Is(err, ErrRoundOutOfWindow) {
			t.Fatalf("round %d err = %v, want ErrRoundOutOfWindow", round, err)
		}
	}
	a, _ := r.Tenant("a.example")
	if rounds := a.Manager().Rounds(); len(rounds) != 2 {
		t.Fatalf("tenant a rounds = %v after out-of-window spray, want [1 2]", rounds)
	}
	if rounds := windowed.Manager().Rounds(); len(rounds) != 1 {
		t.Fatalf("tenant b rounds = %v, want [1]", rounds)
	}
	if got := r.Budget().Live(); got != 3 {
		t.Fatalf("budget live = %d, want 3", got)
	}
}

func TestBudgetExhaustedWhenNothingEvictable(t *testing.T) {
	r := budgetRegistry(t, 2)
	a, _ := r.Tenant("a.example")
	for round := uint64(1); round <= 2; round++ {
		if err := r.Ingest(tenantContribution(t, nil, "a.example", round, 1, int(round))); err != nil {
			t.Fatal(err)
		}
		// Sealed rounds hold memory but are never evicted.
		if err := a.Manager().Seal(round); err != nil {
			t.Fatal(err)
		}
	}
	err := r.Ingest(tenantContribution(t, nil, "b.example", 1, 1, 0))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// Forget releases the budget; admission recovers.
	a.Manager().Forget(1)
	if err := r.Ingest(tenantContribution(t, nil, "b.example", 1, 1, 1)); err != nil {
		t.Fatalf("admission after Forget: %v", err)
	}
}

// TestBudgetOperatorCreationBypasses pins the documented operator bypass:
// explicit Round creation is charged but never blocked.
func TestBudgetOperatorCreationBypasses(t *testing.T) {
	r := budgetRegistry(t, 1)
	a, _ := r.Tenant("a.example")
	for round := uint64(1); round <= 3; round++ {
		a.Manager().Round(round)
	}
	if got := r.Budget().Live(); got != 3 {
		t.Fatalf("budget live = %d, want 3 (operator rounds charged)", got)
	}
}

// FuzzRouteContribution fuzzes the frame-level router: arbitrary bytes
// must never panic, never be accepted unless they fully verify for a
// registered tenant, and unroutable inputs must land in the registry's
// rejection counter (routing accounting stays exact under garbage).
func FuzzRouteContribution(f *testing.F) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		f.Fatal(err)
	}
	r := NewRegistry(8)
	for _, name := range []string{"alpha.example", "beta.example"} {
		if _, err := r.AddTenant(TenantConfig{Name: name, Verify: key.Public(), Dim: 2}); err != nil {
			f.Fatal(err)
		}
	}
	valid := tenantContribution(f, key, "alpha.example", 1, 2, 1)
	// Seed corpus: the routing-relevant shapes — a valid contribution, an
	// unknown tenant, a truncated name field, and a cross-tenant replay
	// (alpha's bytes respelled as beta).
	f.Add(valid)
	f.Add(tenantContribution(f, key, "ghost.example", 1, 2, 2))
	f.Add(valid[:3])
	f.Add([]byte{0x00, 0x00, 0xFF, 0xFF, 'x'})
	sc, err := glimmer.DecodeSignedContribution(valid)
	if err != nil {
		f.Fatal(err)
	}
	sc.ServiceName = "beta.example"
	f.Add(glimmer.EncodeSignedContribution(sc))

	f.Fuzz(func(t *testing.T, data []byte) {
		refusedBefore := r.Rejected()
		err := r.Ingest(data)
		if err == nil {
			// Accepted: the input must be a genuine, routable contribution
			// — decodable, named for a registered tenant, and verifying
			// under the tenant key.
			decoded, serr := glimmer.DecodeSignedContribution(data)
			if serr != nil {
				t.Fatalf("accepted undecodable input %x", data)
			}
			if _, ok := r.Tenant(decoded.ServiceName); !ok {
				t.Fatalf("accepted contribution for unregistered tenant %q", decoded.ServiceName)
			}
			return
		}
		if errors.Is(err, ErrUnknownTenant) || isRoutingError(data) {
			if r.Rejected() == refusedBefore && errors.Is(err, ErrUnknownTenant) {
				t.Fatal("unknown-tenant refusal not counted by the registry")
			}
		}
	})
}

// isRoutingError reports whether the input dies before reaching a tenant
// (its name field cannot be peeked).
func isRoutingError(data []byte) bool {
	_, err := glimmer.PeekContributionService(data)
	return err != nil
}

// TestRegistryIngestBatchErrorAlignment pins the error-slot alignment
// contract across mixed routable/unroutable batches.
func TestRegistryIngestBatchErrorAlignment(t *testing.T) {
	r, keys := twoTenantRegistry(t)
	alpha := tenantContribution(t, keys["alpha.example"], "alpha.example", 2, 4, 1)
	raws := [][]byte{
		[]byte("garbage-0"),
		tenantContribution(t, keys["beta.example"], "beta.example", 2, 2, 0),
		alpha,
		bytes.Repeat([]byte{0xFF}, 6),
		alpha, // byte-identical duplicate
	}
	accepted, errs := r.IngestBatch(raws)
	if accepted != 2 {
		t.Fatalf("accepted = %d, want 2", accepted)
	}
	if errs[0] == nil || errs[3] == nil {
		t.Fatal("garbage slots not refused")
	}
	if errs[1] != nil || errs[2] != nil {
		t.Fatalf("valid slots refused: %v / %v", errs[1], errs[2])
	}
	if !errors.Is(errs[4], ErrDuplicate) {
		t.Fatalf("duplicate slot err = %v, want ErrDuplicate", errs[4])
	}
}

// TestRegistryConcurrentMixedIngest hammers the router from many
// goroutines across tenants and checks the totals; run under -race in CI.
func TestRegistryConcurrentMixedIngest(t *testing.T) {
	r, keys := twoTenantRegistry(t)
	const lanes, perLane = 8, 24
	done := make(chan error, lanes)
	for l := 0; l < lanes; l++ {
		go func(l int) {
			var firstErr error
			for i := 0; i < perLane; i++ {
				name := "alpha.example"
				dim := 4
				if (l+i)%2 == 1 {
					name, dim = "beta.example", 2
				}
				raw := tenantContribution(t, keys[name], name, 3, dim, l*perLane+i)
				if err := r.Ingest(raw); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("lane %d item %d: %w", l, i, err)
				}
			}
			done <- firstErr
		}(l)
	}
	for l := 0; l < lanes; l++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, name := range []string{"alpha.example", "beta.example"} {
		tn, _ := r.Tenant(name)
		if p, ok := tn.Manager().Lookup(3); ok {
			total += p.Count()
		}
	}
	if total != lanes*perLane {
		t.Fatalf("total accepted = %d, want %d", total, lanes*perLane)
	}
}
