package service

import (
	"errors"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// Aggregator collects signed, blinded contributions for one round and
// recovers the exact aggregate once the cohort is complete (Figure 1c's
// server side). It enforces the service's trust policy: only contributions
// endorsed by a vetted Glimmer's signing key count.
//
// Aggregator is the single-round convenience facade over Pipeline,
// configured strictly serially (one worker, one shard): it never spawns
// goroutines, allocates exactly one sum vector and one dedup map, and the
// lifecycle stays implicit (the round stays open; Sum and Mean read live
// snapshots). It is safe for concurrent use — concurrent Adds serialize
// on the single shard. High-throughput ingest should use Pipeline or
// RoundManager directly for worker pools, sharding, and explicit
// Seal/Close.
type Aggregator struct {
	p *Pipeline
}

// Aggregator errors.
var (
	ErrBadSignature   = errors.New("service: contribution signature invalid")
	ErrWrongRound     = errors.New("service: contribution for a different round")
	ErrWrongService   = errors.New("service: contribution for a different service")
	ErrWrongDim       = errors.New("service: contribution has wrong dimension")
	ErrUnknownGlimmer = errors.New("service: contribution from unvetted glimmer")
	ErrDuplicate      = errors.New("service: duplicate contribution")
)

// NewAggregator starts collection for one round.
func NewAggregator(serviceName string, verify *xcrypto.VerifyKey, dim int, round uint64) *Aggregator {
	return &Aggregator{p: NewPipeline(PipelineConfig{
		ServiceName: serviceName,
		Verify:      verify,
		Dim:         dim,
		Round:       round,
		Workers:     1,
		Shards:      1,
	})}
}

// Vet allowlists a Glimmer measurement for this aggregator.
func (a *Aggregator) Vet(m tee.Measurement) { a.p.Vet(m) }

// Add verifies and accumulates one encoded SignedContribution.
func (a *Aggregator) Add(raw []byte) error { return a.p.Add(raw) }

// AddBatch verifies and accumulates many encoded contributions, returning
// one error slot per input. The facade processes the batch inline on the
// calling goroutine; use Pipeline for a parallel verifier pool.
func (a *Aggregator) AddBatch(raws [][]byte) []error { return a.p.AddBatch(raws) }

// Count reports accepted contributions.
func (a *Aggregator) Count() int { return a.p.Count() }

// Rejected reports refused submissions.
func (a *Aggregator) Rejected() int { return a.p.Rejected() }

// Sum returns the aggregate sum. With a complete cohort the blinding masks
// have cancelled and this is the exact sum of the true contributions.
func (a *Aggregator) Sum() fixed.Vector { return a.p.Sum() }

// Mean returns the aggregate mean over accepted contributions.
func (a *Aggregator) Mean() (fixed.Vector, error) { return a.p.Mean() }

// CorrectDropout removes a reconstructed mask from the aggregate after a
// client dropped out mid-round (see blind.RecoverMask). The mask is added
// because the surviving sum is missing exactly the dropped client's mask
// cancellation.
func (a *Aggregator) CorrectDropout(recoveredMask fixed.Vector) error {
	return a.p.CorrectDropout(recoveredMask)
}
