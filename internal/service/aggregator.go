package service

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// Aggregator collects signed, blinded contributions for one round and
// recovers the exact aggregate once the cohort is complete (Figure 1c's
// server side). It enforces the service's trust policy: only contributions
// endorsed by a vetted Glimmer's signing key count.
type Aggregator struct {
	serviceName string
	verify      *xcrypto.VerifyKey
	allowed     map[tee.Measurement]bool
	dim         int
	round       uint64

	sum   fixed.Vector
	count int
	seen  map[[32]byte]bool

	rejected int
}

// Aggregator errors.
var (
	ErrBadSignature   = errors.New("service: contribution signature invalid")
	ErrWrongRound     = errors.New("service: contribution for a different round")
	ErrWrongService   = errors.New("service: contribution for a different service")
	ErrWrongDim       = errors.New("service: contribution has wrong dimension")
	ErrUnknownGlimmer = errors.New("service: contribution from unvetted glimmer")
	ErrDuplicate      = errors.New("service: duplicate contribution")
)

// NewAggregator starts collection for one round.
func NewAggregator(serviceName string, verify *xcrypto.VerifyKey, dim int, round uint64) *Aggregator {
	return &Aggregator{
		serviceName: serviceName,
		verify:      verify,
		allowed:     make(map[tee.Measurement]bool),
		dim:         dim,
		round:       round,
		sum:         fixed.NewVector(dim),
		seen:        make(map[[32]byte]bool),
	}
}

// Vet allowlists a Glimmer measurement for this aggregator.
func (a *Aggregator) Vet(m tee.Measurement) { a.allowed[m] = true }

// Add verifies and accumulates one encoded SignedContribution.
func (a *Aggregator) Add(raw []byte) error {
	sc, err := glimmer.DecodeSignedContribution(raw)
	if err != nil {
		a.rejected++
		return fmt.Errorf("service: %w", err)
	}
	if sc.ServiceName != a.serviceName {
		a.rejected++
		return ErrWrongService
	}
	if sc.Round != a.round {
		a.rejected++
		return ErrWrongRound
	}
	if len(sc.Blinded) != a.dim {
		a.rejected++
		return ErrWrongDim
	}
	if len(a.allowed) > 0 && !a.allowed[sc.Measurement] {
		a.rejected++
		return ErrUnknownGlimmer
	}
	if !a.verify.Verify(sc.SignedBytes(), sc.Signature) {
		a.rejected++
		return ErrBadSignature
	}
	digest := sha256.Sum256(raw)
	if a.seen[digest] {
		a.rejected++
		return ErrDuplicate
	}
	a.seen[digest] = true
	a.sum.AddInPlace(sc.Blinded)
	a.count++
	return nil
}

// Count reports accepted contributions.
func (a *Aggregator) Count() int { return a.count }

// Rejected reports refused submissions.
func (a *Aggregator) Rejected() int { return a.rejected }

// Sum returns the aggregate sum. With a complete cohort the blinding masks
// have cancelled and this is the exact sum of the true contributions.
func (a *Aggregator) Sum() fixed.Vector { return a.sum.Clone() }

// Mean returns the aggregate mean over accepted contributions.
func (a *Aggregator) Mean() (fixed.Vector, error) {
	if a.count == 0 {
		return nil, errors.New("service: no contributions accepted")
	}
	out := a.sum.Clone()
	for i := range out {
		out[i] = fixed.Ring(int64(out[i]) / int64(a.count))
	}
	return out, nil
}

// CorrectDropout removes a reconstructed mask from the aggregate after a
// client dropped out mid-round (see blind.RecoverMask). The mask is added
// because the surviving sum is missing exactly the dropped client's mask
// cancellation.
func (a *Aggregator) CorrectDropout(recoveredMask fixed.Vector) error {
	if len(recoveredMask) != a.dim {
		return ErrWrongDim
	}
	a.sum.AddInPlace(recoveredMask)
	return nil
}
