package service

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// TestEvictAtCapRaceKeepsAcceptedContributions is the -race regression for
// the eviction path: while one goroutine hammers a victim round with
// AddBatch and another seals it, a third keeps the manager at its round
// cap with fresh verified rounds so EvictAtCap evictions fire throughout.
// The property under test: a contribution whose AddBatch slot returned nil
// is never lost — it is in the round's (eventually merged) aggregate and
// count, even if the round was evicted and closed mid-batch.
func TestEvictAtCapRaceKeepsAcceptedContributions(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const (
		dim         = 4
		victimRound = uint64(1)
		hammers     = 3
		batches     = 40
		batchSize   = 4
	)
	mgr := NewRoundManager(PipelineConfig{
		ServiceName: "svc",
		Verify:      key.Public(),
		Dim:         dim,
		Workers:     2,
		Shards:      2,
	})
	mgr.MaxRounds = 4
	mgr.EvictAtCap = true
	mgr.Vet(tee.Measurement{1, 2, 3})
	victim := mgr.Round(victimRound)

	var (
		mu            sync.Mutex
		acceptedSum   = fixed.NewVector(dim)
		acceptedCount = 0
		start         = make(chan struct{})
		stopSpray     = make(chan struct{})
		sprayWarm     = make(chan struct{})
		sprayDone     = make(chan struct{})
		wg            sync.WaitGroup
	)

	// Sprayer: verified contributions for ever-fresh rounds, keeping the
	// manager at the cap so admissions evict open rounds (possibly the
	// victim) the whole time. It runs until the hammers finish.
	go func() {
		defer close(sprayDone)
		rng := rand.New(rand.NewSource(7))
		<-start
		for round := uint64(100); ; round++ {
			select {
			case <-stopSpray:
				return
			default:
			}
			raw := signedVector(t, key, "svc", round, randomVector(rng, dim))
			if err := mgr.Ingest(raw); err != nil &&
				!errors.Is(err, ErrTooManyRounds) && !errors.Is(err, ErrRoundOutOfWindow) {
				t.Errorf("spray round %d: unexpected error %v", round, err)
				return
			}
			if round == 120 {
				close(sprayWarm)
			}
		}
	}()

	// Hammers: batches into the victim round. Accepted slots are tallied;
	// lifecycle refusals (the victim got sealed or evicted+closed) are the
	// expected losing outcomes.
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + h)))
			<-start
			for b := 0; b < batches; b++ {
				vecs := make([]fixed.Vector, batchSize)
				batch := make([][]byte, batchSize)
				for i := range batch {
					vecs[i] = randomVector(rng, dim)
					batch[i] = signedVector(t, key, "svc", victimRound, vecs[i])
				}
				for i, err := range victim.AddBatch(batch) {
					switch {
					case err == nil:
						mu.Lock()
						acceptedSum.AddInPlace(vecs[i])
						acceptedCount++
						mu.Unlock()
					case errors.Is(err, ErrRoundSealed), errors.Is(err, ErrRoundClosed):
						// Sealed under us (by the sealer or an eviction):
						// fine, as long as it was never reported accepted.
					default:
						t.Errorf("hammer %d: unexpected error %v", h, err)
					}
				}
			}
		}(h)
	}

	// Sealer: seals the victim once the eviction storm is warmed up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		<-sprayWarm
		if err := victim.Seal(); err != nil && !errors.Is(err, ErrRoundClosed) {
			t.Errorf("seal: %v", err)
		}
	}()

	close(start)
	wg.Wait()
	close(stopSpray)
	<-sprayDone

	// Settle the victim (it may already be sealed or evicted+closed).
	if err := victim.Seal(); err != nil && !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("final seal: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got := victim.Count(); got != acceptedCount {
		t.Fatalf("accepted-then-lost: victim count %d, AddBatch reported %d accepted", got, acceptedCount)
	}
	sum := victim.Sum()
	for d := range acceptedSum {
		if sum[d] != acceptedSum[d] {
			t.Fatalf("aggregate diverges at dim %d: %v != %v (accepted contributions lost or double-counted)", d, sum[d], acceptedSum[d])
		}
	}
}
