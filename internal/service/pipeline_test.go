package service

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// signedVector fabricates a signed contribution carrying the given vector.
func signedVector(t *testing.T, key *xcrypto.SigningKey, name string, round uint64, v fixed.Vector) []byte {
	t.Helper()
	sc := glimmer.SignedContribution{
		ServiceName: name,
		Round:       round,
		Measurement: tee.Measurement{1, 2, 3},
		Blinded:     v,
	}
	sig, err := key.Sign(sc.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	sc.Signature = sig
	return glimmer.EncodeSignedContribution(sc)
}

func randomVector(rng *rand.Rand, dim int) fixed.Vector {
	v := fixed.NewVector(dim)
	for i := range v {
		v[i] = fixed.Ring(rng.Uint64())
	}
	return v
}

// TestPipelineConcurrentErrorPaths drives every rejection path from many
// goroutines at once (run under -race in CI): wrong service, wrong round,
// wrong dimension, unvetted measurement, forged signature, garbage bytes,
// and a shared contribution that exactly one goroutine may win.
func TestPipelineConcurrentErrorPaths(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const (
		dim        = 8
		round      = uint64(3)
		goroutines = 8
	)
	p := NewPipeline(PipelineConfig{
		ServiceName: "svc",
		Verify:      key.Public(),
		Dim:         dim,
		Round:       round,
		Workers:     4,
		Shards:      4,
	})
	p.Vet(tee.Measurement{1, 2, 3})

	shared := signedVector(t, key, "svc", round, fixed.NewVector(dim))
	rng := rand.New(rand.NewSource(42))
	goods := make([][]byte, goroutines)
	for i := range goods {
		goods[i] = signedVector(t, key, "svc", round, randomVector(rng, dim))
	}
	wrongService := signedVector(t, key, "other", round, fixed.NewVector(dim))
	wrongRound := signedVector(t, key, "svc", round+1, fixed.NewVector(dim))
	wrongDim := signedVector(t, key, "svc", round, fixed.NewVector(dim+1))
	unvetted := func() []byte {
		sc := glimmer.SignedContribution{
			ServiceName: "svc", Round: round,
			Measurement: tee.Measurement{9}, Blinded: fixed.NewVector(dim),
		}
		sig, err := key.Sign(sc.SignedBytes())
		if err != nil {
			t.Fatal(err)
		}
		sc.Signature = sig
		return glimmer.EncodeSignedContribution(sc)
	}()
	forged := func() []byte {
		sc, err := glimmer.DecodeSignedContribution(shared)
		if err != nil {
			t.Fatal(err)
		}
		sc.Blinded[0] = 99
		return glimmer.EncodeSignedContribution(sc)
	}()

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		dupAccepts int
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if err := p.Add(goods[g]); err != nil {
				t.Errorf("good contribution %d refused: %v", g, err)
			}
			switch err := p.Add(shared); {
			case err == nil:
				mu.Lock()
				dupAccepts++
				mu.Unlock()
			case !errors.Is(err, ErrDuplicate):
				t.Errorf("shared contribution err = %v, want ErrDuplicate", err)
			}
			for _, c := range []struct {
				raw  []byte
				want error
			}{
				{wrongService, ErrWrongService},
				{wrongRound, ErrWrongRound},
				{wrongDim, ErrWrongDim},
				{unvetted, ErrUnknownGlimmer},
				{forged, ErrBadSignature},
			} {
				if err := p.Add(c.raw); !errors.Is(err, c.want) {
					t.Errorf("err = %v, want %v", err, c.want)
				}
			}
			if err := p.Add([]byte("garbage")); err == nil {
				t.Error("garbage accepted")
			}
		}(g)
	}
	wg.Wait()

	if dupAccepts != 1 {
		t.Fatalf("shared contribution accepted %d times, want exactly 1", dupAccepts)
	}
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	if want := goroutines + 1; p.Count() != want {
		t.Fatalf("count = %d, want %d", p.Count(), want)
	}
	// Per goroutine: 6 deterministic rejections plus (goroutines-1)/goroutines
	// of the shared duplicates.
	if want := goroutines*6 + goroutines - 1; p.Rejected() != want {
		t.Fatalf("rejected = %d, want %d", p.Rejected(), want)
	}
}

// TestPipelineShardedSumEqualsSerial is the property test: a heavily
// sharded pipeline fed concurrently in batches must produce exactly the
// serial aggregator's sum — ring addition is commutative, so sharding and
// reordering must not be observable.
func TestPipelineShardedSumEqualsSerial(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const (
		dim     = 32
		round   = uint64(1)
		clients = 96
	)
	rng := rand.New(rand.NewSource(7))
	raws := make([][]byte, clients)
	for i := range raws {
		raws[i] = signedVector(t, key, "svc", round, randomVector(rng, dim))
	}

	serial := NewPipeline(PipelineConfig{
		ServiceName: "svc",
		Verify:      key.Public(),
		Dim:         dim,
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
	for _, raw := range raws {
		if err := serial.Add(raw); err != nil {
			t.Fatal(err)
		}
	}

	sharded := NewPipeline(PipelineConfig{
		ServiceName: "svc",
		Verify:      key.Public(),
		Dim:         dim,
		Round:       round,
		Workers:     8,
		Shards:      16,
	})
	for _, err := range sharded.AddBatch(raws) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sharded.Seal(); err != nil {
		t.Fatal(err)
	}

	if sharded.Count() != serial.Count() {
		t.Fatalf("count: sharded %d != serial %d", sharded.Count(), serial.Count())
	}
	want, got := serial.Sum(), sharded.Sum()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sum[%d]: sharded %d != serial %d", i, got[i], want[i])
		}
	}
	wantMean, err := serial.Mean()
	if err != nil {
		t.Fatal(err)
	}
	gotMean, err := sharded.Mean()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantMean {
		if wantMean[i] != gotMean[i] {
			t.Fatalf("mean[%d]: sharded %d != serial %d", i, gotMean[i], wantMean[i])
		}
	}
}

// TestPipelineLifecycle exercises open → sealed → closed.
func TestPipelineLifecycle(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim, round = 4, uint64(1)
	p := NewPipeline(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim, Round: round,
		Workers: 2, Shards: 2,
	})
	good := signedVector(t, key, "svc", round, fixed.FromFloats([]float64{0.5, 0.5, 0.5, 0.5}))
	if err := p.Add(good); err != nil {
		t.Fatal(err)
	}

	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := p.Seal(); err != nil {
		t.Fatalf("second seal: %v", err)
	}
	late := signedVector(t, key, "svc", round, fixed.NewVector(dim))
	if err := p.Add(late); !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("add after seal err = %v, want ErrRoundSealed", err)
	}
	for _, err := range p.AddBatch([][]byte{late}) {
		if !errors.Is(err, ErrRoundSealed) {
			t.Fatalf("batch after seal err = %v, want ErrRoundSealed", err)
		}
	}
	if got := p.Rejected(); got != 2 {
		t.Fatalf("rejected after sealed refusals = %d, want 2", got)
	}

	// Dropout correction is valid while sealed and must move the sum.
	before := p.Sum()
	mask := fixed.FromFloats([]float64{1, 0, 0, 0})
	if err := p.CorrectDropout(mask); err != nil {
		t.Fatalf("dropout while sealed: %v", err)
	}
	after := p.Sum()
	if after[0] != before[0]+mask[0] {
		t.Fatalf("dropout correction not applied: %v -> %v", before[0], after[0])
	}
	if err := p.CorrectDropout(fixed.NewVector(dim + 1)); !errors.Is(err, ErrWrongDim) {
		t.Fatalf("dropout dim err = %v, want ErrWrongDim", err)
	}

	p.Close()
	p.Close() // idempotent
	if err := p.CorrectDropout(mask); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("dropout after close err = %v, want ErrRoundClosed", err)
	}
	if err := p.Add(late); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("add after close err = %v, want ErrRoundClosed", err)
	}
	if err := p.Seal(); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("seal after close err = %v, want ErrRoundClosed", err)
	}
	if p.Count() != 1 {
		t.Fatalf("count after close = %d, want 1", p.Count())
	}
	if got := p.Sum(); got[0] != after[0] {
		t.Fatalf("sum changed after close: %v != %v", got[0], after[0])
	}
}

// TestRoundManagerOverlappingRounds ingests for two rounds at once and
// walks them through independent lifecycles.
func TestRoundManagerOverlappingRounds(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim = 8
	m := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 2, Shards: 2,
	})

	rng := rand.New(rand.NewSource(11))
	var batch [][]byte
	perRound := map[uint64]int{1: 5, 2: 3}
	for round, n := range perRound {
		for i := 0; i < n; i++ {
			batch = append(batch, signedVector(t, key, "svc", round, randomVector(rng, dim)))
		}
	}
	accepted, errs := m.IngestBatch(batch)
	if accepted != len(batch) {
		t.Fatalf("accepted = %d, want %d (errs: %v)", accepted, len(batch), errs)
	}
	for round, n := range perRound {
		if got := m.Round(round).Count(); got != n {
			t.Fatalf("round %d count = %d, want %d", round, got, n)
		}
	}

	// Sealing round 1 leaves round 2 ingesting.
	if err := m.Seal(1); err != nil {
		t.Fatal(err)
	}
	late1 := signedVector(t, key, "svc", 1, randomVector(rng, dim))
	if err := m.Ingest(late1); !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("round 1 straggler err = %v, want ErrRoundSealed", err)
	}
	if err := m.Ingest(signedVector(t, key, "svc", 2, randomVector(rng, dim))); err != nil {
		t.Fatalf("round 2 ingest after round 1 seal: %v", err)
	}

	p2 := m.Close(2)
	if p2.Count() != perRound[2]+1 {
		t.Fatalf("round 2 count = %d, want %d", p2.Count(), perRound[2]+1)
	}
	// A closed round stays closed for stragglers until forgotten.
	if err := m.Ingest(signedVector(t, key, "svc", 2, randomVector(rng, dim))); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("round 2 straggler err = %v, want ErrRoundClosed", err)
	}

	if got := m.Rounds(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("rounds = %v, want [1 2]", got)
	}
	m.Forget(2)
	if got := m.Rounds(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rounds after forget = %v, want [1]", got)
	}

	if err := m.Ingest([]byte("garbage")); err == nil {
		t.Fatal("garbage routed")
	}
	if _, errs := m.IngestBatch([][]byte{[]byte("garbage")}); errs[0] == nil {
		t.Fatal("garbage batch item accepted")
	}
	if got := m.Rejected(); got != 2 {
		t.Fatalf("manager rejected = %d, want 2 (the garbage refusals)", got)
	}
}

// TestRoundManagerCapsIngestRounds confirms a hostile batch naming many
// distinct rounds cannot allocate pipelines without bound: ingest refuses
// new rounds past MaxRounds, while already-live rounds keep ingesting.
func TestRoundManagerCapsIngestRounds(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim = 4
	m := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})
	m.MaxRounds = 2

	rng := rand.New(rand.NewSource(5))
	var batch [][]byte
	for round := uint64(1); round <= 5; round++ {
		batch = append(batch, signedVector(t, key, "svc", round, randomVector(rng, dim)))
	}
	accepted, errs := m.IngestBatch(batch)
	if accepted != 2 {
		t.Fatalf("accepted = %d, want 2 (errs: %v)", accepted, errs)
	}
	capped := 0
	for _, err := range errs {
		if errors.Is(err, ErrTooManyRounds) {
			capped++
		}
	}
	if capped != 3 {
		t.Fatalf("ErrTooManyRounds count = %d, want 3", capped)
	}
	if got := len(m.Rounds()); got != 2 {
		t.Fatalf("live rounds = %d, want 2", got)
	}
	// Existing rounds still ingest at the cap.
	live := m.Rounds()[0]
	if err := m.Ingest(signedVector(t, key, "svc", live, randomVector(rng, dim))); err != nil {
		t.Fatalf("ingest for live round at cap: %v", err)
	}
	// Forgetting a round frees a slot for a new one.
	m.Forget(live)
	if err := m.Ingest(signedVector(t, key, "svc", 99, randomVector(rng, dim))); err != nil {
		t.Fatalf("ingest after forget: %v", err)
	}
}

// TestRoundManagerGatesCreationOnSignature confirms unauthenticated bytes
// cannot allocate rounds: only a contribution that verifies brings a
// pipeline into existence.
func TestRoundManagerGatesCreationOnSignature(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim = 4
	m := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})

	rng := rand.New(rand.NewSource(3))
	// Forged signatures naming many distinct rounds: every item rejected,
	// zero rounds created.
	var forged [][]byte
	for round := uint64(1); round <= 50; round++ {
		forged = append(forged, signedVector(t, attacker, "svc", round, randomVector(rng, dim)))
	}
	accepted, errs := m.IngestBatch(forged)
	if accepted != 0 {
		t.Fatalf("accepted = %d forged contributions", accepted)
	}
	for _, err := range errs {
		if !errors.Is(err, ErrBadSignature) {
			t.Fatalf("forged err = %v, want ErrBadSignature", err)
		}
	}
	if got := m.Rounds(); len(got) != 0 {
		t.Fatalf("forged traffic created rounds %v", got)
	}
	if err := m.Ingest(signedVector(t, attacker, "svc", 7, randomVector(rng, dim))); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("single forged ingest err = %v, want ErrBadSignature", err)
	}
	if got := m.Rounds(); len(got) != 0 {
		t.Fatalf("single forged ingest created rounds %v", got)
	}

	// A mixed batch: the valid item creates the round and lands; forgeries
	// for the same round are rejected by the pipeline.
	mixed := [][]byte{
		signedVector(t, attacker, "svc", 9, randomVector(rng, dim)),
		signedVector(t, key, "svc", 9, randomVector(rng, dim)),
		signedVector(t, attacker, "svc", 9, randomVector(rng, dim)),
	}
	accepted, errs = m.IngestBatch(mixed)
	if accepted != 1 {
		t.Fatalf("mixed batch accepted = %d, want 1 (errs: %v)", accepted, errs)
	}
	if errs[1] != nil {
		t.Fatalf("valid item rejected: %v", errs[1])
	}
	if got := m.Round(9).Count(); got != 1 {
		t.Fatalf("round 9 count = %d, want 1", got)
	}
}

// TestRoundManagerRoundWindow confirms a valid contribution naming a
// round far from the ones in flight cannot create a pipeline — the
// defense against a vetted client churning rounds with far-future round
// numbers.
func TestRoundManagerRoundWindow(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim = 4
	m := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})
	m.RoundWindow = 16

	rng := rand.New(rand.NewSource(6))
	// Two contributions establish round 100 as the window anchor.
	for i := 0; i < 2; i++ {
		if err := m.Ingest(signedVector(t, key, "svc", 100, randomVector(rng, dim))); err != nil {
			t.Fatalf("anchor round: %v", err)
		}
	}
	if err := m.Ingest(signedVector(t, key, "svc", 1<<60, randomVector(rng, dim))); !errors.Is(err, ErrRoundOutOfWindow) {
		t.Fatalf("far-future round err = %v, want ErrRoundOutOfWindow", err)
	}
	if err := m.Ingest(signedVector(t, key, "svc", 1, randomVector(rng, dim))); !errors.Is(err, ErrRoundOutOfWindow) {
		t.Fatalf("far-past round err = %v, want ErrRoundOutOfWindow", err)
	}
	if err := m.Ingest(signedVector(t, key, "svc", 113, randomVector(rng, dim))); err != nil {
		t.Fatalf("in-window round: %v", err)
	}

	// Before any round establishes, a stray far-off round cannot wedge the
	// manager: it is admitted (bounded by the cap), and real rounds stay
	// admissible afterwards.
	fresh := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})
	fresh.RoundWindow = 16
	if err := fresh.Ingest(signedVector(t, key, "svc", 1<<50, randomVector(rng, dim))); err != nil {
		t.Fatalf("stray far round before establishment: %v", err)
	}
	if err := fresh.Ingest(signedVector(t, key, "svc", 5, randomVector(rng, dim))); err != nil {
		t.Fatalf("real round after stray far round: %v", err)
	}
}

// TestRoundManagerEvictAtCap confirms the unattended-daemon policy: at
// the cap, a new verified round evicts the least-filled live round, so a
// round a real cohort has filled survives a spray of fresh round numbers.
func TestRoundManagerEvictAtCap(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim = 4
	m := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})
	m.MaxRounds = 2
	m.EvictAtCap = true

	rng := rand.New(rand.NewSource(4))
	// Round 1 is established with two contributions; rounds 2..4 arrive
	// with one each and must evict each other, never round 1.
	for _, round := range []uint64{1, 1, 2, 3, 4} {
		if err := m.Ingest(signedVector(t, key, "svc", round, randomVector(rng, dim))); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if got := m.Rounds(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("live rounds = %v, want [1 4]", got)
	}
	if got := m.Round(1).Count(); got != 2 {
		t.Fatalf("established round count = %d, want 2", got)
	}

	// On a count tie the highest round number loses: an ascending spray
	// evicts its own latest round, not the earlier-opened one.
	tie := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})
	tie.MaxRounds = 2
	tie.EvictAtCap = true
	for _, round := range []uint64{10, 11, 12} {
		if err := tie.Ingest(signedVector(t, key, "svc", round, randomVector(rng, dim))); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if got := tie.Rounds(); len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Fatalf("live rounds after tie eviction = %v, want [10 12]", got)
	}

	// A sealed round is never an eviction victim, even at Count()==0: its
	// anti-reopen guarantee must survive cap pressure. With every live
	// round unevictable, ingest for new rounds refuses instead.
	sealed := NewRoundManager(PipelineConfig{
		ServiceName: "svc", Verify: key.Public(), Dim: dim,
		Workers: 1, Shards: 1,
	})
	sealed.MaxRounds = 2
	sealed.EvictAtCap = true
	if err := sealed.Seal(20); err != nil {
		t.Fatal(err)
	}
	sealed.Close(21)
	if err := sealed.Ingest(signedVector(t, key, "svc", 22, randomVector(rng, dim))); !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("ingest with only sealed/closed rounds err = %v, want ErrTooManyRounds", err)
	}
	if got := sealed.Rounds(); len(got) != 2 || got[0] != 20 || got[1] != 21 {
		t.Fatalf("sealed/closed rounds = %v, want [20 21]", got)
	}
	if err := sealed.Ingest(signedVector(t, key, "svc", 20, randomVector(rng, dim))); !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("straggler to sealed round err = %v, want ErrRoundSealed", err)
	}
}
