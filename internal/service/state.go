package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"glimmers/internal/fixed"
	"glimmers/internal/xcrypto"
)

// This file is the durability boundary of the service layer: exportable
// state types, export/restore hooks on Registry/RoundManager/Pipeline/
// TicketTable, and the Journal interface that internal/durable implements
// to write a WAL. The state deliberately holds only what the operator can
// already observe from the running process — aggregate sums, dedup
// digests, counters, and ticket session keys (symmetric keys the server
// necessarily holds). Raw contributions, blinding masks, and device
// secrets are never part of it, so persisting it widens no leakage
// surface beyond the process memory it mirrors.

// RejectLevel says which layer refused a submission, so replay can restore
// the rejection counter that was actually bumped.
type RejectLevel uint8

const (
	// LevelRegistry counts unroutable bytes and unknown tenants
	// (Registry.Rejected).
	LevelRegistry RejectLevel = iota
	// LevelManager counts tenant-level refusals before any round's
	// pipeline (RoundManager.Rejected).
	LevelManager
	// LevelRound counts refusals on an existing round
	// (Pipeline.Rejected).
	LevelRound
)

// Journal receives every durable mutation of a Registry as it happens.
// internal/durable implements it to append WAL records; ReplayJournal
// implements it to apply those records back. Attach with SetJournal
// before the registry serves traffic.
//
// Calls are made outside shard locks on the hot path and must not retain
// slice arguments (digests, vectors) past the call: encode synchronously.
//
// Durability contract: implementations may persist asynchronously, but
// RoundSealed, RoundClosed, and TicketGranted are barriers — they must
// not return until the record and everything journaled before it are
// durable, because the caller publishes the state they describe the
// moment the journal call returns (a sealed sum to operators and the
// fleet plane, a session key to the device). The service layer keeps
// those three hooks off its internal locks so an implementation can
// block in them; the remaining hooks may be called under manager or
// shard bookkeeping locks and must return quickly (RoundCreated and
// RoundForgotten, in particular, fire under the round manager's lock).
type Journal interface {
	RoundCreated(tenant string, round uint64)
	RoundSealed(tenant string, round uint64)
	RoundClosed(tenant string, round uint64)
	// RoundForgotten records a round leaving the manager's map (explicit
	// Forget or cap eviction); its state is no longer registry-reachable.
	RoundForgotten(tenant string, round uint64)
	// Accepted records one accepted contribution: its dedup digest and
	// the blinded vector that entered the sum.
	Accepted(tenant string, round uint64, digest [32]byte, blinded fixed.Vector)
	// BatchAccepted is the batch-ingest watermark: the digests accepted
	// from one frame and their combined delta on the round's sum.
	BatchAccepted(tenant string, round uint64, digests [][32]byte, delta fixed.Vector)
	DropoutCorrected(tenant string, round uint64, mask fixed.Vector)
	Rejected(tenant string, round uint64, level RejectLevel, n int)
	TicketGranted(tenant string, tk TicketState)
	TicketEvicted(tenant string, id uint64)
}

// TicketState is one ticket-table entry in exportable form. The session
// key is symmetric material the server holds anyway; persisting it is
// what lets restored sessions keep contributing without re-running the
// asymmetric grant exchange.
type TicketState struct {
	ID          uint64
	Key         xcrypto.SessionKey
	RoundFirst  uint64
	RoundLast   uint64
	ExpiresUnix int64
}

// Round phases in exportable form (the unexported lifecycle constants,
// fixed as wire values).
const (
	RoundPhaseOpen   uint8 = 0
	RoundPhaseSealed uint8 = 1
	RoundPhaseClosed uint8 = 2
)

// RoundState is one round's aggregate state: lifecycle phase, accepted
// count, rejection counter, the (blinded) sum, and every dedup digest —
// all of them, so a restored round still refuses pre-snapshot duplicates.
type RoundState struct {
	Round    uint64
	Phase    uint8
	Count    uint64
	Rejected uint64
	Sum      fixed.Vector
	Digests  [][32]byte // sorted lexicographically for determinism
}

// TenantState is one tenant's exportable state. ConfigDigest binds the
// state to the tenant configuration that produced it (name, dimension,
// ticket policy presence — not keys, which glimmerd regenerates per
// process); restore refuses a mismatch.
type TenantState struct {
	Name         string
	ConfigDigest [32]byte
	Rejected     uint64
	Rounds       []RoundState  // sorted by round
	Tickets      []TicketState // sorted by ID
}

// RegistryState is the full exportable state of a Registry. Export is
// deterministic: tenants by name, rounds ascending, digests and tickets
// sorted — so export → encode → restore → export round-trips
// byte-identically on a quiesced registry.
type RegistryState struct {
	Rejected uint64
	Tenants  []TenantState
}

// ConfigDigest fingerprints the identity-critical part of the tenant
// configuration: service name, dimension, and whether tickets are
// enabled. Verify keys are deliberately excluded — glimmerd regenerates
// its service identity on every start, and durable state must survive
// that; the ticket session keys in the state are what keep pre-restart
// sessions valid across the rotation.
func (t *Tenant) ConfigDigest() [32]byte {
	var buf [8]byte
	h := sha256.New()
	h.Write([]byte("glimmers/tenant-config/v1"))
	h.Write([]byte(t.cfg.Name))
	binary.BigEndian.PutUint64(buf[:], uint64(t.cfg.Dim))
	h.Write(buf[:])
	if t.cfg.TicketPolicy != nil {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// SetJournal attaches a journal to the registry, every tenant manager,
// ticket table, and live pipeline. Must be called before the registry
// serves traffic (the fields are read without synchronization on the hot
// path, like UseBudget); internal/durable calls it at the end of Recover.
func (r *Registry) SetJournal(j Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = j
	for _, t := range r.tenants {
		m := t.manager
		m.mu.Lock()
		m.journal = j
		for _, p := range m.rounds {
			p.journal = j
		}
		m.mu.Unlock()
		if m.cfg.Tickets != nil {
			m.cfg.Tickets.setJournal(t.cfg.Name, j)
		}
	}
}

// ExportState snapshots the registry. Serialization happens in the
// caller (internal/durable) outside every service lock; this walk takes
// each shard/table lock only long enough to copy. For a consistent image
// the caller must have quiesced ingest — a mutation concurrent with the
// export would land in both the snapshot and the next WAL generation.
func (r *Registry) ExportState() RegistryState {
	st := RegistryState{Rejected: uint64(r.rejected.Load())}
	for _, t := range r.Tenants() { // name-sorted
		st.Tenants = append(st.Tenants, t.exportState())
	}
	return st
}

func (t *Tenant) exportState() TenantState {
	m := t.manager
	ts := TenantState{
		Name:         t.cfg.Name,
		ConfigDigest: t.ConfigDigest(),
		Rejected:     uint64(m.rejected.Load()),
	}
	for _, round := range m.Rounds() { // ascending
		if p, ok := m.Lookup(round); ok {
			ts.Rounds = append(ts.Rounds, p.exportRound())
		}
	}
	if m.cfg.Tickets != nil {
		ts.Tickets = m.cfg.Tickets.exportTickets()
	}
	return ts
}

func (p *Pipeline) exportRound() RoundState {
	p.stateMu.RLock()
	phase := uint8(p.state)
	p.stateMu.RUnlock()
	sum, count := p.snapshot()
	rs := RoundState{
		Round:    p.cfg.Round,
		Phase:    phase,
		Count:    uint64(count),
		Rejected: uint64(p.rejected.Load()),
		Sum:      sum,
	}
	for _, sh := range p.shards {
		sh.mu.Lock()
		for d := range sh.seen {
			rs.Digests = append(rs.Digests, d)
		}
		sh.mu.Unlock()
	}
	sortDigests(rs.Digests)
	return rs
}

func sortDigests(ds [][32]byte) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		for k := 0; k < 32; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func (t *TicketTable) exportTickets() []TicketState {
	t.mu.RLock()
	out := make([]TicketState, 0, len(t.entries))
	for id, e := range t.entries {
		out = append(out, TicketState{
			ID: id, Key: e.key,
			RoundFirst: e.roundFirst, RoundLast: e.roundLast,
			ExpiresUnix: e.expiresUnix,
		})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RestoreState loads a previously exported state into a registry whose
// tenants have already been registered with matching configurations
// (same names, dimensions, ticket policies — ConfigDigest enforces it).
// Call on a fresh registry before it serves traffic and before
// SetJournal, so the restore itself is not journaled back.
func (r *Registry) RestoreState(st RegistryState) error {
	for _, ts := range st.Tenants {
		t, ok := r.Tenant(ts.Name)
		if !ok {
			return fmt.Errorf("service: restore: %w: %q", ErrUnknownTenant, ts.Name)
		}
		if t.ConfigDigest() != ts.ConfigDigest {
			return fmt.Errorf("service: restore: tenant %q config digest mismatch (state was exported under a different name/dim/ticket policy)", ts.Name)
		}
		t.manager.restoreState(ts)
	}
	r.rejected.Store(int64(st.Rejected))
	return nil
}

func (m *RoundManager) restoreState(ts TenantState) {
	m.rejected.Store(int64(ts.Rejected))
	for _, rs := range ts.Rounds {
		m.Round(rs.Round).restoreRound(rs)
	}
	if m.cfg.Tickets != nil {
		for _, tk := range ts.Tickets {
			m.cfg.Tickets.restoreTicket(tk)
		}
	}
}

func (p *Pipeline) restoreRound(rs RoundState) {
	p.rejected.Store(int64(rs.Rejected))
	p.restoreAccepted(rs.Digests, rs.Sum)
	// Dedup inserts counted len(Digests); reconcile against the recorded
	// count (they differ only if a future state version decouples them).
	if diff := int(rs.Count) - len(rs.Digests); diff != 0 {
		sh := p.shards[0]
		sh.mu.Lock()
		sh.count += diff
		sh.mu.Unlock()
	}
	switch rs.Phase {
	case RoundPhaseSealed:
		_ = p.Seal()
	case RoundPhaseClosed:
		p.Close()
	}
}

// restoreAccepted re-applies accepted contributions from durable state:
// digests are routed to their dedup shards exactly as live ingest routes
// them (so restored duplicates are still refused), and the combined delta
// lands in shard 0 — per-shard placement of sums is irrelevant, only the
// merged total is observable. Each fresh digest counts as one accepted
// contribution, mirroring live accounting.
func (p *Pipeline) restoreAccepted(digests [][32]byte, delta fixed.Vector) {
	for _, d := range digests {
		sh := p.shards[binary.BigEndian.Uint64(d[:8])&p.shardMask]
		sh.mu.Lock()
		if !sh.seen[d] {
			sh.seen[d] = true
			sh.count++
		}
		sh.mu.Unlock()
	}
	if len(delta) == p.cfg.Dim {
		sh := p.shards[0]
		sh.mu.Lock()
		sh.sum.AddInPlace(delta)
		sh.mu.Unlock()
	}
}

// restoreTicket installs an entry verbatim: no eviction policy, no
// journaling. WAL evict records — not a re-run of the bound logic —
// remove entries during replay, so replay is exact rather than
// clock-dependent.
func (t *TicketTable) restoreTicket(tk TicketState) {
	t.mu.Lock()
	t.entries[tk.ID] = ticketEntry{
		key:         tk.Key,
		roundFirst:  tk.RoundFirst,
		roundLast:   tk.RoundLast,
		expiresUnix: tk.ExpiresUnix,
	}
	t.mu.Unlock()
}

func (t *TicketTable) deleteTicket(id uint64) {
	t.mu.Lock()
	delete(t.entries, id)
	t.mu.Unlock()
}

func (t *TicketTable) setJournal(tenant string, j Journal) {
	t.mu.Lock()
	t.tenant, t.journal = tenant, j
	t.mu.Unlock()
}

// ReplayJournal returns a Journal whose events mutate the registry
// directly: the replay side of the WAL. internal/durable feeds decoded
// records through it before attaching the real journal. onErr (may be
// nil) receives non-fatal replay mismatches — records naming tenants the
// registry no longer has.
func (r *Registry) ReplayJournal(onErr func(error)) Journal {
	if onErr == nil {
		onErr = func(error) {}
	}
	return &replayJournal{reg: r, onErr: onErr}
}

type replayJournal struct {
	reg   *Registry
	onErr func(error)
}

func (rj *replayJournal) manager(tenant string) *RoundManager {
	t, ok := rj.reg.Tenant(tenant)
	if !ok {
		rj.onErr(fmt.Errorf("service: replay: %w: %q", ErrUnknownTenant, tenant))
		return nil
	}
	return t.manager
}

// round resolves an existing round for replay. Only RoundCreated brings a
// round into existence: every other record applies to a round that is
// still registered and is dropped once a RoundForgotten record has
// removed it — exactly mirroring what registry-reachable state did live
// (an evicted round's late in-flight records changed only the detached
// pipeline, which the registry could no longer observe).
func (rj *replayJournal) round(tenant string, round uint64) *Pipeline {
	m := rj.manager(tenant)
	if m == nil {
		return nil
	}
	p, ok := m.Lookup(round)
	if !ok {
		return nil
	}
	return p
}

func (rj *replayJournal) RoundCreated(tenant string, round uint64) {
	if m := rj.manager(tenant); m != nil {
		m.Round(round)
	}
}

func (rj *replayJournal) RoundSealed(tenant string, round uint64) {
	if p := rj.round(tenant, round); p != nil {
		_ = p.Seal()
	}
}

func (rj *replayJournal) RoundClosed(tenant string, round uint64) {
	if p := rj.round(tenant, round); p != nil {
		p.Close()
	}
}

func (rj *replayJournal) RoundForgotten(tenant string, round uint64) {
	if m := rj.manager(tenant); m != nil {
		m.Forget(round)
	}
}

func (rj *replayJournal) Accepted(tenant string, round uint64, digest [32]byte, blinded fixed.Vector) {
	if p := rj.round(tenant, round); p != nil {
		p.restoreAccepted([][32]byte{digest}, blinded)
	}
}

func (rj *replayJournal) BatchAccepted(tenant string, round uint64, digests [][32]byte, delta fixed.Vector) {
	if p := rj.round(tenant, round); p != nil {
		p.restoreAccepted(digests, delta)
	}
}

func (rj *replayJournal) DropoutCorrected(tenant string, round uint64, mask fixed.Vector) {
	if p := rj.round(tenant, round); p != nil {
		if err := p.CorrectDropout(mask); err != nil {
			rj.onErr(fmt.Errorf("service: replay: dropout correction on %s/%d: %w", tenant, round, err))
		}
	}
}

func (rj *replayJournal) Rejected(tenant string, round uint64, level RejectLevel, n int) {
	switch level {
	case LevelRegistry:
		rj.reg.rejected.Add(int64(n))
	case LevelManager:
		if m := rj.manager(tenant); m != nil {
			m.rejected.Add(int64(n))
		}
	case LevelRound:
		if p := rj.round(tenant, round); p != nil {
			p.rejected.Add(int64(n))
		}
	default:
		rj.onErr(fmt.Errorf("service: replay: unknown reject level %d", level))
	}
}

func (rj *replayJournal) TicketGranted(tenant string, tk TicketState) {
	m := rj.manager(tenant)
	if m == nil {
		return
	}
	if m.cfg.Tickets == nil {
		rj.onErr(fmt.Errorf("service: replay: ticket grant for %q, which has no ticket table", tenant))
		return
	}
	m.cfg.Tickets.restoreTicket(tk)
}

func (rj *replayJournal) TicketEvicted(tenant string, id uint64) {
	m := rj.manager(tenant)
	if m == nil {
		return
	}
	if m.cfg.Tickets != nil {
		m.cfg.Tickets.deleteTicket(id)
	}
}
