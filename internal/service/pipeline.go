package service

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// Ingest policy errors.
var (
	ErrBadSignature   = errors.New("service: contribution signature invalid")
	ErrWrongRound     = errors.New("service: contribution for a different round")
	ErrWrongService   = errors.New("service: contribution for a different service")
	ErrWrongDim       = errors.New("service: contribution has wrong dimension")
	ErrUnknownGlimmer = errors.New("service: contribution from unvetted glimmer")
	ErrDuplicate      = errors.New("service: duplicate contribution")
)

// Round lifecycle errors.
var (
	// ErrRoundSealed is returned by Add/AddBatch once Seal has been called:
	// the cohort is fixed and the aggregate is being (or has been) merged.
	ErrRoundSealed = errors.New("service: round is sealed")
	// ErrRoundClosed is returned once Close has been called; after close the
	// aggregate is immutable (no further ingest or dropout correction).
	ErrRoundClosed = errors.New("service: round is closed")
)

// Round lifecycle states: open (ingesting) → sealed (cohort fixed, dropout
// correction still allowed) → closed (aggregate immutable).
const (
	roundOpen = iota
	roundSealed
	roundClosed
)

// PipelineConfig sizes one round's ingest pipeline.
type PipelineConfig struct {
	// ServiceName, Verify, Dim, Round fix the round's identity and trust
	// policy: only contributions endorsed by a vetted Glimmer's signing
	// key, for this service, round, and dimensionality, count.
	//
	// Verify may be nil, which disables signature verification: the
	// pipeline then trusts its transport entirely. That mode exists for
	// pre-authenticated in-process ingest (contributions already verified
	// upstream) and for benchmarks isolating the decode+dedup path;
	// anything fed from a network must set Verify.
	ServiceName string
	Verify      *xcrypto.VerifyKey
	Dim         int
	Round       uint64
	// Tickets, when non-nil, enables the amortized fast path: contributions
	// in the ticketed wire variant are checked with a constant-time session
	// MAC against this table instead of an ECDSA verify. The table is
	// shared by every round of a tenant (tickets span rounds); nil refuses
	// ticketed contributions with ErrUnknownTicket. The ECDSA path stays
	// available either way — ticketless clients are unaffected.
	Tickets *TicketTable
	// Workers is the size of the verifier pool AddBatch fans out to.
	// Workers == 1 processes batches inline on the calling goroutine (the
	// serial baseline); <= 0 defaults to GOMAXPROCS.
	Workers int
	// Shards is the number of independently locked dedup/sum shards,
	// rounded up to a power of two; <= 0 defaults to 2×Workers. More shards
	// mean less accumulation contention under concurrent ingest.
	Shards int
	// ExpectedCohort, when positive, pre-sizes each shard's dedup set for
	// that many total contributions, so steady-state ingest below the
	// expectation never rehashes (and therefore never allocates) on the
	// dedup insert. Ingest beyond the expectation still works; the maps
	// grow as usual.
	ExpectedCohort int
	// Journal, when non-nil, receives every durable mutation (see the
	// Journal interface in state.go for the barrier contract). Registry
	// tenants get theirs via Registry.SetJournal, which overrides this;
	// the field exists so bare pipelines and round managers — tests,
	// benchmarks, embedded uses without a Registry — can journal too.
	Journal Journal
}

// pipeShard is one lock's worth of aggregation state. Contributions are
// routed by digest, so under concurrent ingest the shards fill evenly and
// two workers rarely contend on the same lock.
type pipeShard struct {
	mu    sync.Mutex
	seen  map[[32]byte]bool
	sum   fixed.Vector
	count int
}

// Pipeline is the concurrent ingest path for one aggregation round: decode
// and signature checks run on whatever goroutine delivers the contribution
// (many callers, or the AddBatch worker pool), and accumulation is sharded
// by contribution digest so the only serialization is a brief per-shard
// lock. All methods are safe for concurrent use.
//
// A round moves through an explicit lifecycle: while open it ingests; Seal
// fixes the cohort, drains in-flight work, and merges the shards; Close
// makes the aggregate immutable (CorrectDropout is valid only before
// close, mirroring the blind-recovery window of the dropout protocol).
type Pipeline struct {
	cfg       PipelineConfig
	shardMask uint64
	shards    []*pipeShard

	allowMu sync.RWMutex
	allowed map[tee.Measurement]bool

	// stateMu orders lifecycle transitions against intake: intake holds the
	// read side while registering with pending, transitions hold the write
	// side, so no contribution can slip in after a state change.
	stateMu sync.RWMutex
	state   int
	pending sync.WaitGroup

	rejected atomic.Int64

	// journal, when non-nil, receives every durable mutation (see
	// state.go). Set before the pipeline serves traffic: it is read
	// without synchronization on the hot path.
	journal Journal

	// The worker pool starts lazily on the first AddBatch, so a Pipeline
	// used only through the synchronous Add (e.g. via Aggregator) costs no
	// goroutines.
	poolOnce    sync.Once
	poolStarted atomic.Bool
	jobs        chan batchJob
	workerWG    sync.WaitGroup

	// merged/final hold the shard-merged aggregate once sealed. final is
	// guarded by stateMu after the merge (dropout correction mutates it).
	mergeOnce  sync.Once
	merged     atomic.Bool
	final      fixed.Vector
	finalCount int
}

// batchJob is one worker's chunk of an AddBatch submission: the chunk runs
// the whole batch plan (see processBatch) on one worker, so shard locks and
// ticket resolution amortize across the chunk rather than being paid per
// item.
type batchJob struct {
	raws [][]byte
	errs []error
	wg   *sync.WaitGroup
}

// NewPipeline creates the ingest pipeline for one round.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2 * cfg.Workers
	}
	cfg.Shards = nextPowerOfTwo(cfg.Shards)
	p := &Pipeline{
		cfg:       cfg,
		shardMask: uint64(cfg.Shards - 1),
		shards:    make([]*pipeShard, cfg.Shards),
		allowed:   make(map[tee.Measurement]bool),
		journal:   cfg.Journal,
	}
	// Digest sharding spreads contributions binomially, not evenly, so
	// each shard gets 25% headroom plus a constant over the even split —
	// enough that ingest below the expectation stays rehash-free well
	// past the 1-sigma shard imbalance.
	perShard := 0
	if cfg.ExpectedCohort > 0 {
		even := cfg.ExpectedCohort / cfg.Shards
		perShard = even + even/4 + 16
	}
	for i := range p.shards {
		p.shards[i] = &pipeShard{
			seen: make(map[[32]byte]bool, perShard),
			sum:  fixed.NewVector(cfg.Dim),
		}
	}
	return p
}

// ingestScratch bundles the per-contribution hot-path state for both wire
// variants: the ECDSA scratch, the ticketed scratch, and the reusable HMAC
// state the MAC check runs on. One scratch is held by exactly one goroutine
// between Get and Put, so the aliasing rules of its parts (see
// glimmer.ContributionScratch / TicketScratch) and the MACState's
// no-concurrent-use rule are trivially met.
type ingestScratch struct {
	sig glimmer.ContributionScratch
	tkt glimmer.TicketScratch
	mac xcrypto.MACState
}

// scratchPool recycles per-contribution decode scratch across every
// pipeline in the process: rounds come and go, but the scratch (vectors,
// preimage buffers, interned service name, HMAC state) is workload-shaped
// and stays warm.
var scratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// putScratch drops the scratch's aliases into the caller's raw input
// (SC.Signature and TC.MAC are views) before pooling it: an idle pooled
// scratch must not keep a transport's frame buffer reachable — the same
// must-not-retain contract gaas.Ingestor documents for this very path.
func putScratch(s *ingestScratch) {
	s.sig.SC.Signature = nil
	s.tkt.TC.MAC = nil
	scratchPool.Put(s)
}

func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Round returns the round this pipeline aggregates.
func (p *Pipeline) Round() uint64 { return p.cfg.Round }

// Vet allowlists a Glimmer measurement. Safe to call while ingest runs.
func (p *Pipeline) Vet(m tee.Measurement) {
	p.allowMu.Lock()
	p.allowed[m] = true
	p.allowMu.Unlock()
}

// allowlistAdmits is the single admission rule shared by every allowlist
// holder (Pipeline, RoundManager): an empty allowlist admits everything,
// as the serial aggregator did.
func allowlistAdmits(allowed map[tee.Measurement]bool, m tee.Measurement) bool {
	return len(allowed) == 0 || allowed[m]
}

// vetted reports whether the measurement passes the allowlist.
func (p *Pipeline) vetted(m tee.Measurement) bool {
	p.allowMu.RLock()
	defer p.allowMu.RUnlock()
	return allowlistAdmits(p.allowed, m)
}

// enter registers n in-flight contributions, failing if the round has
// left the open state. Lifecycle refusals count toward Rejected like any
// other refused submission.
func (p *Pipeline) enter(n int) error {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	switch p.state {
	case roundSealed:
		p.rejected.Add(int64(n))
		if j := p.journal; j != nil {
			j.Rejected(p.cfg.ServiceName, p.cfg.Round, LevelRound, n)
		}
		return ErrRoundSealed
	case roundClosed:
		p.rejected.Add(int64(n))
		if j := p.journal; j != nil {
			j.Rejected(p.cfg.ServiceName, p.cfg.Round, LevelRound, n)
		}
		return ErrRoundClosed
	}
	p.pending.Add(n)
	return nil
}

// open reports whether the round is still ingesting.
func (p *Pipeline) open() bool {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	return p.state == roundOpen
}

// Add verifies and accumulates one encoded SignedContribution on the
// calling goroutine. Safe to call from many goroutines concurrently —
// throughput scales with the callers.
func (p *Pipeline) Add(raw []byte) error {
	if err := p.enter(1); err != nil {
		return err
	}
	defer p.pending.Done()
	return p.process(raw)
}

// AddBatch verifies and accumulates a batch of encoded contributions
// through the batch plan (see batch.go), chunking across the verifier pool
// when Workers > 1, and returns one error slot per input (nil for
// accepted). It blocks until the whole batch has settled.
func (p *Pipeline) AddBatch(raws [][]byte) []error {
	errs := make([]error, len(raws))
	p.AddBatchErrs(raws, errs)
	return errs
}

func (p *Pipeline) startPool() {
	p.jobs = make(chan batchJob, 4*p.cfg.Workers)
	p.workerWG.Add(p.cfg.Workers)
	for i := 0; i < p.cfg.Workers; i++ {
		go p.worker()
	}
	p.poolStarted.Store(true)
}

func (p *Pipeline) worker() {
	defer p.workerWG.Done()
	for job := range p.jobs {
		p.processBatch(job.raws, job.errs)
		job.wg.Done()
		p.pending.Add(-len(job.raws))
	}
}

// checkContribution runs the stateless checks shared by pipeline ingest
// and round admission (RoundManager.preverify): dispatch on the wire
// variant, decode into the caller's scratch, service identity, round (when
// wantRound is non-nil — the cheap checks come before the expensive
// authenticity check so stale traffic is cheap to reject), dimension, and
// then the variant's authenticity rule: measurement allowlist + ECDSA
// signature for the signed variant, ticket resolution (table, expiry,
// round window) + session MAC for the ticketed one. Dedup is the caller's
// business. Keeping this in one place means the call sites cannot drift
// apart.
//
// On success the returned vector is the decoded blinded contribution; it
// aliases s (and the variant's tag field aliases raw), so the caller must
// finish with it before recycling either. The returned digest is the
// contribution's dedup identity: SHA-256 of the raw bytes on the signed
// path, and the session MAC itself on the ticketed one — the MAC is
// already a collision-resistant digest of everything the message carries
// (only the tag field is outside its preimage, and a message whose tag was
// altered never verifies), so the fast path skips a second full-message
// hash. The whole check performs zero heap allocations at steady state —
// on the ticketed path including the MAC itself, which is the fast path's
// entire point.
func checkContribution(serviceName string, verify *xcrypto.VerifyKey, tickets *TicketTable,
	dim int, wantRound *uint64, vetted func(tee.Measurement) bool,
	raw []byte, s *ingestScratch) (fixed.Vector, [32]byte, error) {
	if glimmer.PeekContributionTicketed(raw) {
		return checkTicketed(serviceName, tickets, dim, wantRound, raw, s)
	}
	var digest [32]byte
	signed, err := s.sig.Decode(raw)
	if err != nil {
		return nil, digest, fmt.Errorf("service: %w", err)
	}
	sc := &s.sig.SC
	if sc.ServiceName != serviceName {
		return nil, digest, ErrWrongService
	}
	if wantRound != nil && sc.Round != *wantRound {
		return nil, digest, ErrWrongRound
	}
	if len(sc.Blinded) != dim {
		return nil, digest, ErrWrongDim
	}
	if !vetted(sc.Measurement) {
		return nil, digest, ErrUnknownGlimmer
	}
	if verify != nil && !verify.Verify(signed, sc.Signature) {
		return nil, digest, ErrBadSignature
	}
	return sc.Blinded, sha256.Sum256(raw), nil
}

// checkTicketed is the amortized fast path: the per-contribution cost is a
// scratch decode, a lock-brief table read, and one constant-time HMAC —
// the asymmetric verify (and the measurement allowlist) were paid once, at
// grant time. The MAC covers the service name and round, so a contribution
// respelled for another tenant or round can never verify; the table's
// window and expiry bound what a captured ticket can replay.
func checkTicketed(serviceName string, tickets *TicketTable, dim int, wantRound *uint64,
	raw []byte, s *ingestScratch) (fixed.Vector, [32]byte, error) {
	var digest [32]byte
	preimage, err := s.tkt.Decode(raw)
	if err != nil {
		return nil, digest, fmt.Errorf("service: %w", err)
	}
	tc := &s.tkt.TC
	if tc.ServiceName != serviceName {
		return nil, digest, ErrWrongService
	}
	if wantRound != nil && tc.Round != *wantRound {
		return nil, digest, ErrWrongRound
	}
	if len(tc.Blinded) != dim {
		return nil, digest, ErrWrongDim
	}
	if tickets == nil {
		return nil, digest, ErrUnknownTicket
	}
	key, err := tickets.check(tc.TicketID, tc.Round)
	if err != nil {
		return nil, digest, err
	}
	if !s.mac.Verify(&key, preimage, tc.MAC) {
		return nil, digest, ErrBadMAC
	}
	// The verified MAC doubles as the dedup digest: identical raw bytes
	// yield the identical MAC, and two messages differing anywhere in
	// their fields have distinct MACs by collision resistance.
	copy(digest[:], tc.MAC)
	return tc.Blinded, digest, nil
}

// process is the per-contribution hot path: decode into pooled scratch,
// policy checks, signature verification (all lock-free), then a brief
// shard-local critical section for dedup and accumulation. Steady state it
// allocates nothing outside the signature verifier's internals: the decode
// reuses pooled scratch, the digest lives on the stack, and the dedup
// insert lands in a pre-sized map (ExpectedCohort).
func (p *Pipeline) process(raw []byte) error {
	s := scratchPool.Get().(*ingestScratch)
	defer putScratch(s)
	blinded, digest, err := checkContribution(p.cfg.ServiceName, p.cfg.Verify, p.cfg.Tickets,
		p.cfg.Dim, &p.cfg.Round, p.vetted, raw, s)
	if err != nil {
		return p.reject(err)
	}
	sh := p.shards[binary.BigEndian.Uint64(digest[:8])&p.shardMask]
	sh.mu.Lock()
	if sh.seen[digest] {
		sh.mu.Unlock()
		return p.reject(ErrDuplicate)
	}
	sh.seen[digest] = true
	sh.sum.AddInPlace(blinded)
	sh.count++
	sh.mu.Unlock()
	// Journal outside the shard lock. blinded aliases pooled scratch,
	// which is safe: the journal encodes synchronously and the scratch is
	// not pooled until this function returns.
	if j := p.journal; j != nil {
		j.Accepted(p.cfg.ServiceName, p.cfg.Round, digest, blinded)
	}
	return nil
}

func (p *Pipeline) reject(err error) error {
	p.rejected.Add(1)
	if j := p.journal; j != nil {
		j.Rejected(p.cfg.ServiceName, p.cfg.Round, LevelRound, 1)
	}
	return err
}

// Seal fixes the cohort: it stops intake, drains in-flight contributions,
// and merges the shards into the final aggregate. Sealing an already
// sealed round is a no-op; sealing a closed round returns ErrRoundClosed.
func (p *Pipeline) Seal() error {
	p.stateMu.Lock()
	if p.state == roundClosed {
		p.stateMu.Unlock()
		return ErrRoundClosed
	}
	transitioned := p.state == roundOpen
	p.state = roundSealed
	p.stateMu.Unlock()
	p.pending.Wait()
	p.mergeOnce.Do(p.merge)
	// Journaled after the drain: every accepted contribution of the round
	// has written its record by the time the seal record lands, so replay
	// seals exactly the cohort that was sealed live.
	if transitioned {
		if j := p.journal; j != nil {
			j.RoundSealed(p.cfg.ServiceName, p.cfg.Round)
		}
	}
	return nil
}

// merge folds the quiescent shards into final. Runs exactly once, after
// intake has stopped and in-flight work has drained.
func (p *Pipeline) merge() {
	p.final = fixed.NewVector(p.cfg.Dim)
	for _, sh := range p.shards {
		sh.mu.Lock()
		p.final.AddInPlace(sh.sum)
		p.finalCount += sh.count
		sh.mu.Unlock()
	}
	p.merged.Store(true)
}

// Close seals the round if needed and makes the aggregate immutable. The
// worker pool, if started, is torn down. Closing twice is a no-op; Sum,
// Mean, Count and Rejected remain available.
func (p *Pipeline) Close() {
	_ = p.Seal() // only fails with ErrRoundClosed, which Close absorbs
	p.stateMu.Lock()
	if p.state == roundClosed {
		p.stateMu.Unlock()
		return
	}
	p.state = roundClosed
	p.stateMu.Unlock()
	if p.poolStarted.Load() {
		close(p.jobs)
		p.workerWG.Wait()
	}
	if j := p.journal; j != nil {
		j.RoundClosed(p.cfg.ServiceName, p.cfg.Round)
	}
}

// snapshot reads sum and count together — each shard's pair is taken
// under its lock, so a concurrent Add is either wholly in or wholly out
// of the result, never split between the sum and the count.
func (p *Pipeline) snapshot() (fixed.Vector, int) {
	if p.merged.Load() {
		p.stateMu.RLock()
		defer p.stateMu.RUnlock()
		return p.final.Clone(), p.finalCount
	}
	out := fixed.NewVector(p.cfg.Dim)
	count := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		out.AddInPlace(sh.sum)
		count += sh.count
		sh.mu.Unlock()
	}
	return out, count
}

// Sum returns the aggregate sum. After Seal it is the merged, stable
// aggregate; while the round is open it is a live snapshot and concurrent
// Adds may land before or after it.
func (p *Pipeline) Sum() fixed.Vector {
	sum, _ := p.snapshot()
	return sum
}

// Count reports accepted contributions (a live snapshot while open).
func (p *Pipeline) Count() int {
	if p.merged.Load() {
		p.stateMu.RLock()
		defer p.stateMu.RUnlock()
		return p.finalCount
	}
	total := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		total += sh.count
		sh.mu.Unlock()
	}
	return total
}

// Rejected reports refused submissions.
func (p *Pipeline) Rejected() int { return int(p.rejected.Load()) }

// Mean returns the aggregate mean over accepted contributions.
func (p *Pipeline) Mean() (fixed.Vector, error) {
	sum, n := p.snapshot()
	if n == 0 {
		return nil, errors.New("service: no contributions accepted")
	}
	sum.DivScalarInPlace(int64(n))
	return sum, nil
}

// CorrectDropout removes a reconstructed mask from the aggregate after a
// client dropped out mid-round (see blind.RecoverMask). The mask is added
// because the surviving sum is missing exactly the dropped client's mask
// cancellation. Valid while the round is open or sealed; a closed round's
// aggregate is immutable.
func (p *Pipeline) CorrectDropout(recoveredMask fixed.Vector) error {
	if len(recoveredMask) != p.cfg.Dim {
		return ErrWrongDim
	}
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	if p.state == roundClosed {
		return ErrRoundClosed
	}
	if p.state == roundSealed || p.merged.Load() {
		// Make sure the merge has happened (Seal may be mid-flight on
		// another goroutine; pending cannot grow while we hold stateMu).
		p.pending.Wait()
		p.mergeOnce.Do(p.merge)
		p.final.AddInPlace(recoveredMask)
		if j := p.journal; j != nil {
			j.DropoutCorrected(p.cfg.ServiceName, p.cfg.Round, recoveredMask)
		}
		return nil
	}
	sh := p.shards[0]
	sh.mu.Lock()
	sh.sum.AddInPlace(recoveredMask)
	sh.mu.Unlock()
	if j := p.journal; j != nil {
		j.DropoutCorrected(p.cfg.ServiceName, p.cfg.Round, recoveredMask)
	}
	return nil
}
