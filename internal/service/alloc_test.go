package service

import (
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/race"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// allocRaws fabricates n encoded contributions with distinct vectors
// (distinct digests) for round, optionally signed.
func allocRaws(t testing.TB, n, dim int, round uint64, key *xcrypto.SigningKey) [][]byte {
	t.Helper()
	raws := make([][]byte, n)
	for i := range raws {
		sc := glimmer.SignedContribution{
			ServiceName: "alloc.example",
			Round:       round,
			Measurement: tee.Measurement{1},
			Blinded:     make(fixed.Vector, dim),
			Confidence:  1,
		}
		for j := range sc.Blinded {
			sc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + uint64(j))
		}
		if key != nil {
			sig, err := key.Sign(sc.SignedBytes())
			if err != nil {
				t.Fatal(err)
			}
			sc.Signature = sig
		}
		raws[i] = glimmer.EncodeSignedContribution(sc)
	}
	return raws
}

// TestDedupInsertAllocFree pins the tentpole contract on the service
// layer: with a pre-sized cohort and signature verification out of the
// way (nil Verify — the pre-authenticated mode), the steady-state
// decode→dedup→accumulate path performs zero heap allocations per
// contribution.
func TestDedupInsertAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	const runs = 300
	raws := allocRaws(t, runs+50, 64, 7, nil)
	p := NewPipeline(PipelineConfig{
		ServiceName:    "alloc.example",
		Dim:            64,
		Round:          7,
		Workers:        1,
		Shards:         1,
		ExpectedCohort: len(raws),
	})
	// Warm the scratch pool and the first map buckets.
	if err := p.Add(raws[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	if got := testing.AllocsPerRun(runs, func() {
		i++
		if err := p.Add(raws[i]); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("decode+dedup insert: %.1f allocs/op, want 0", got)
	}
	if p.Count() != i+1 {
		t.Fatalf("count = %d, want %d", p.Count(), i+1)
	}
}

// TestNilVerifySkipsSignatureCheck locks in the pre-authenticated mode's
// semantics: unsigned contributions are accepted, every other policy check
// still applies.
func TestNilVerifySkipsSignatureCheck(t *testing.T) {
	raws := allocRaws(t, 2, 8, 3, nil)
	p := NewPipeline(PipelineConfig{ServiceName: "alloc.example", Dim: 8, Round: 3, Workers: 1, Shards: 1})
	if err := p.Add(raws[0]); err != nil {
		t.Fatalf("unsigned contribution refused in nil-Verify mode: %v", err)
	}
	if err := p.Add(raws[0]); err != ErrDuplicate {
		t.Fatalf("duplicate err = %v, want ErrDuplicate", err)
	}
	wrongRound := allocRaws(t, 1, 8, 4, nil)
	if err := p.Add(wrongRound[0]); err != ErrWrongRound {
		t.Fatalf("wrong-round err = %v, want ErrWrongRound", err)
	}
	wrongDim := allocRaws(t, 1, 9, 3, nil)
	if err := p.Add(wrongDim[0]); err != ErrWrongDim {
		t.Fatalf("wrong-dim err = %v, want ErrWrongDim", err)
	}
}

// TestVerifyStillEnforcedWithKey guards against the nil-Verify escape
// hatch weakening the signed path: with a key set, a bogus signature is
// still refused.
func TestVerifyStillEnforcedWithKey(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	good := allocRaws(t, 1, 8, 3, key)
	bad := allocRaws(t, 1, 8, 3, nil) // unsigned
	p := NewPipeline(PipelineConfig{ServiceName: "alloc.example", Verify: key.Public(), Dim: 8, Round: 3, Workers: 1, Shards: 1})
	if err := p.Add(good[0]); err != nil {
		t.Fatalf("valid signed contribution refused: %v", err)
	}
	if err := p.Add(bad[0]); err != ErrBadSignature {
		t.Fatalf("unsigned err = %v, want ErrBadSignature", err)
	}
}

// TestPooledScratchNotAliasedAcrossConcurrentAddBatch is the -race guard
// for the scratch pool: many goroutines push overlapping batches through a
// pooled-worker pipeline, and the sealed aggregate must equal the exact
// element-wise sum of every distinct contribution. A scratch recycled
// while another worker still reads it would corrupt the sum (and trip the
// race detector).
func TestPooledScratchNotAliasedAcrossConcurrentAddBatch(t *testing.T) {
	const (
		dim       = 32
		perCaller = 64
		callers   = 6
		round     = uint64(5)
	)
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	all := allocRaws(t, callers*perCaller, dim, round, key)
	want := fixed.NewVector(dim)
	for _, raw := range all {
		sc, err := glimmer.DecodeSignedContribution(raw)
		if err != nil {
			t.Fatal(err)
		}
		want.AddInPlace(sc.Blinded)
	}
	p := NewPipeline(PipelineConfig{
		ServiceName:    "alloc.example",
		Verify:         key.Public(),
		Dim:            dim,
		Round:          round,
		Workers:        4,
		ExpectedCohort: len(all),
	})
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		batch := all[c*perCaller : (c+1)*perCaller]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, err := range p.AddBatch(batch) {
				if err != nil {
					t.Errorf("AddBatch: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Count() != len(all) {
		t.Fatalf("count = %d, want %d", p.Count(), len(all))
	}
	got := p.Sum()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v, want %v (scratch aliasing?)", i, got[i], want[i])
		}
	}
}
