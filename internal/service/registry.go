package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// The multi-tenant hosting layer: one Registry owns N tenants — each a
// hosted service with its own predicate, contribution key, glimmer config,
// and RoundManager — under one shared live-round budget. The paper's whole
// point is that a single glimmer substrate serves many services (§4.1 bot
// detection and §4.2 hosted glimmers are two tenants of the same trust
// mechanism); the Registry is the server-side shape of that claim.

// DefaultMaxTotalRounds bounds the live pipelines a Registry's tenants may
// hold collectively when no explicit budget size is given.
const DefaultMaxTotalRounds = 256

// Registry and budget errors.
var (
	// ErrUnknownTenant is returned when a contribution (or a hosting
	// request) names a service the registry does not host.
	ErrUnknownTenant = errors.New("service: unknown tenant")
	// ErrTenantExists is returned by AddTenant for a duplicate name.
	ErrTenantExists = errors.New("service: tenant already registered")
	// ErrBudgetExhausted is returned by ingest when the shared budget is
	// full and no tenant holds an evictable open round.
	ErrBudgetExhausted = errors.New("service: shared round budget exhausted")
)

// Budget is the shared live-round budget across a registry's tenants: a
// global cap on pipelines in memory, enforced at ingest-driven round
// admission. When the cap is hit, the budget evicts the least-filled open
// round of the tenant holding the most live rounds — cross-tenant fair
// eviction: the heaviest user of the shared resource gives a round back,
// so one tenant's round spray can never starve the others. Sealed and
// closed rounds still count against the budget (they hold memory) but are
// never evicted; a budget wedged by consumed-but-unforgotten rounds is
// released by Forget.
type Budget struct {
	max int

	mu sync.Mutex
	// reserved counts admission slots claimed but not yet settled; live
	// counts each member's registered rounds. Their sum is the budget's
	// occupancy.
	reserved int
	members  []*RoundManager
	live     map[*RoundManager]int
}

// NewBudget creates a budget for at most max live rounds across every
// attached manager (<= 0 means DefaultMaxTotalRounds).
func NewBudget(max int) *Budget {
	if max <= 0 {
		max = DefaultMaxTotalRounds
	}
	return &Budget{max: max, live: make(map[*RoundManager]int)}
}

// attach registers a manager with the budget (via RoundManager.UseBudget).
// Attachment order breaks eviction ties, so it is part of the budget's
// deterministic behaviour.
func (b *Budget) attach(m *RoundManager) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.live[m]; !ok {
		b.members = append(b.members, m)
		b.live[m] = 0
	}
}

// Live reports the budget's occupancy (registered rounds plus in-flight
// reservations).
func (b *Budget) Live() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.occupancyLocked()
}

func (b *Budget) occupancyLocked() int {
	n := b.reserved
	for _, c := range b.live {
		n += c
	}
	return n
}

// reserve claims one admission slot for m, evicting cross-tenant when the
// budget is full. The returned victims (already deregistered from their
// managers and debited here) must be Closed by the caller outside every
// lock; they are returned even alongside ErrBudgetExhausted.
func (b *Budget) reserve(m *RoundManager) ([]*Pipeline, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var victims []*Pipeline
	for b.occupancyLocked() >= b.max {
		p, owner := b.evictLocked()
		if p == nil {
			return victims, ErrBudgetExhausted
		}
		b.live[owner]--
		victims = append(victims, p)
	}
	b.reserved++
	return victims, nil
}

// evictLocked takes one open round from the heaviest member (attachment
// order breaks ties; members with nothing evictable are skipped).
func (b *Budget) evictLocked() (*Pipeline, *RoundManager) {
	tried := make(map[*RoundManager]bool, len(b.members))
	for len(tried) < len(b.members) {
		var heaviest *RoundManager
		for _, m := range b.members {
			if tried[m] {
				continue
			}
			if heaviest == nil || b.live[m] > b.live[heaviest] {
				heaviest = m
			}
		}
		if p, ok := heaviest.dropLeastFilled(); ok {
			return p, heaviest
		}
		tried[heaviest] = true
	}
	return nil, nil
}

// settle converts a reservation into a live round (created) or releases it
// (the round already existed, or admission was refused for other reasons).
func (b *Budget) settle(m *RoundManager, created bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reserved--
	if created {
		b.live[m]++
	}
}

// noteCreated books an operator-created round (RoundManager.Round and the
// Seal/Close paths). Operator creation is charged but never blocked: the
// budget may run over its cap until ingest-driven admission rebalances it.
func (b *Budget) noteCreated(m *RoundManager) {
	b.mu.Lock()
	b.live[m]++
	b.mu.Unlock()
}

// noteRemoved releases n rounds m no longer holds (Forget, per-manager cap
// eviction).
func (b *Budget) noteRemoved(m *RoundManager, n int) {
	b.mu.Lock()
	b.live[m] -= n
	b.mu.Unlock()
}

// TenantConfig describes one hosted service.
type TenantConfig struct {
	// Name is the tenant's service name — the routing key every
	// contribution carries and every client names in its hello.
	Name string
	// Verify checks the tenant's glimmer-signed contributions; nil
	// disables signature verification (pre-authenticated ingest only).
	Verify *xcrypto.VerifyKey
	// Dim is the tenant's contribution dimensionality.
	Dim int

	// Workers, Shards, and ExpectedCohort size each round's pipeline (see
	// PipelineConfig).
	Workers        int
	Shards         int
	ExpectedCohort int

	// MaxRounds, RoundWindow, and EvictAtCap are the tenant's admission
	// quota (see the RoundManager fields of the same names). The quota is
	// per-tenant; the Registry's Budget is the global cap on top.
	MaxRounds   int
	RoundWindow uint64
	EvictAtCap  bool

	// Glimmer, when its ServiceName is set, is the enclave configuration
	// the hosting front end (internal/gaas) loads for this tenant's user
	// sessions; Provision readies each freshly loaded device. A tenant
	// without a Glimmer config is ingest-only.
	Glimmer   glimmer.Config
	Provision func(*glimmer.Device) error

	// TicketPolicy, when non-nil, enables the amortized fast path for this
	// tenant: the registry creates a bounded per-tenant TicketTable under
	// this policy, GrantTicket fills it (one ECDSA verify per session), and
	// ingest accepts MAC'd contributions against it. Tenants without a
	// policy refuse ticketed traffic; their ECDSA path is unchanged.
	TicketPolicy *TicketConfig
}

// Tenant is one registered service: its configuration and the RoundManager
// that aggregates for it.
type Tenant struct {
	cfg     TenantConfig
	manager *RoundManager
}

// Name returns the tenant's service name.
func (t *Tenant) Name() string { return t.cfg.Name }

// Config returns the tenant's configuration.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Manager returns the tenant's round manager.
func (t *Tenant) Manager() *RoundManager { return t.manager }

// Measurement returns the enclave measurement this tenant's user sessions
// attest — the value a deployment publishes for clients to pin (gaas
// known-hosts files, verifier allowlists). The zero measurement means the
// tenant is ingest-only (no Glimmer config).
func (t *Tenant) Measurement() tee.Measurement {
	if t.cfg.Glimmer.ServiceName == "" {
		return tee.Measurement{}
	}
	return glimmer.BuildBinary(t.cfg.Glimmer).Measurement()
}

// Registry owns the tenants of a multi-tenant deployment and routes every
// submitted contribution to its tenant's pipeline by an alloc-free header
// peek. It satisfies gaas.Ingestor (batch ingest with frame-level routing)
// and gaas.HostResolver (per-tenant enclave hosting). All methods are safe
// for concurrent use; AddTenant must happen before traffic is served.
type Registry struct {
	budget *Budget

	mu      sync.RWMutex
	tenants map[string]*Tenant

	// rejected counts registry-level refusals: unroutable bytes and
	// unknown tenants. Refusals inside a tenant are counted by that
	// tenant's manager and pipelines.
	rejected atomic.Int64

	// journal, when non-nil, receives durable mutations (see state.go).
	// Set via SetJournal before the registry serves traffic.
	journal Journal
}

// NewRegistry creates a registry whose tenants share a budget of at most
// maxTotalRounds live rounds (<= 0 means DefaultMaxTotalRounds).
func NewRegistry(maxTotalRounds int) *Registry {
	return &Registry{
		budget:  NewBudget(maxTotalRounds),
		tenants: make(map[string]*Tenant),
	}
}

// Budget returns the shared budget, for occupancy inspection.
func (r *Registry) Budget() *Budget { return r.budget }

// AddTenant registers a service and returns its tenant handle.
func (r *Registry) AddTenant(cfg TenantConfig) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, errors.New("service: tenant with empty name")
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("service: tenant %q: dimension must be positive", cfg.Name)
	}
	// The duplicate check guards manager creation too: a manager attached
	// to the shared budget cannot be detached, so a refused AddTenant must
	// not have created one.
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, cfg.Name)
	}
	var tickets *TicketTable
	if cfg.TicketPolicy != nil {
		tickets = NewTicketTable(*cfg.TicketPolicy)
	}
	m := NewRoundManager(PipelineConfig{
		ServiceName:    cfg.Name,
		Verify:         cfg.Verify,
		Dim:            cfg.Dim,
		Tickets:        tickets,
		Workers:        cfg.Workers,
		Shards:         cfg.Shards,
		ExpectedCohort: cfg.ExpectedCohort,
	})
	m.MaxRounds = cfg.MaxRounds
	m.RoundWindow = cfg.RoundWindow
	m.EvictAtCap = cfg.EvictAtCap
	m.UseBudget(r.budget)
	t := &Tenant{cfg: cfg, manager: m}
	r.tenants[cfg.Name] = t
	return t, nil
}

// Tenant returns the named tenant.
func (r *Registry) Tenant(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Tenants lists the registered tenants in name order.
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Name < out[j].cfg.Name })
	return out
}

// Rejected reports registry-level refusals (unroutable bytes, unknown
// tenants). Per-tenant refusals live in each tenant's manager/pipelines.
func (r *Registry) Rejected() int { return int(r.rejected.Load()) }

func (r *Registry) refuse(err error) error {
	r.rejected.Add(1)
	if j := r.journal; j != nil {
		j.Rejected("", 0, LevelRegistry, 1)
	}
	return err
}

// lookup resolves a peeked service-name view without allocating: indexing
// a map by string(bytes) compiles to an allocation-free lookup.
func (r *Registry) lookup(name []byte) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[string(name)]
}

// Ingest routes one encoded contribution to its tenant's manager.
func (r *Registry) Ingest(raw []byte) error {
	name, err := glimmer.PeekContributionService(raw)
	if err != nil {
		return r.refuse(fmt.Errorf("service: %w", err))
	}
	t := r.lookup(name)
	if t == nil {
		return r.refuse(fmt.Errorf("%w: %q", ErrUnknownTenant, name))
	}
	return t.manager.Ingest(raw)
}

// GrantTicket routes a ticket request to the tenant it names and runs that
// tenant's grant exchange (see RoundManager.GrantTicket). Control-plane
// refusals — unknown tenant included — return to the caller without
// touching the rejection counters, which account contributions only.
func (r *Registry) GrantTicket(raw []byte) ([]byte, error) {
	req, err := wire.DecodeTicketRequest(raw)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	t, ok := r.Tenant(req.Service)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, req.Service)
	}
	return t.manager.grantTicket(req)
}

// ResolveHost returns the enclave configuration and provisioning hook for
// the named tenant — the gaas.HostResolver side of the registry. An empty
// name resolves only when exactly one tenant is registered (the
// single-tenant deployment's legacy hello).
func (r *Registry) ResolveHost(name string) (glimmer.Config, func(*glimmer.Device) error, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.tenants[name]
	if t == nil && name == "" && len(r.tenants) == 1 {
		for _, only := range r.tenants {
			t = only
		}
	}
	if t == nil {
		return glimmer.Config{}, nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if t.cfg.Glimmer.ServiceName == "" {
		return glimmer.Config{}, nil, fmt.Errorf("service: tenant %q does not host glimmers", name)
	}
	return t.cfg.Glimmer, t.cfg.Provision, nil
}
