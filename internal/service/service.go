// Package service implements the cloud side of the Glimmer architecture:
// the provider that vets Glimmer measurements, provisions signing keys and
// validation predicates over attested channels, and aggregates the signed,
// blinded contributions that come back.
//
// The service is *untrusted with private data* — everything it receives is
// blinded or validated-and-public — but it is the authority on what counts
// as a valid contribution: it picks the predicate, issues the signing key,
// and rejects anything not endorsed by a vetted Glimmer.
package service

import (
	"errors"
	"fmt"
	"strings"

	"glimmers/internal/attest"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// Attestable is anything the service can provision: a single-enclave
// Glimmer device, one component of a decomposed Glimmer, or a remote
// Glimmer proxied over the network (internal/gaas).
type Attestable interface {
	// Hello returns the enclave's encoded attestation hello.
	Hello() ([]byte, error)
	// Complete delivers the service's encoded handshake response.
	Complete(response []byte) error
	// Provision delivers a session-encrypted record and returns the
	// session-encrypted acknowledgement.
	Provision(record []byte) ([]byte, error)
}

// Service is one cloud service: identity keys, vetting policy, and the
// validation predicate it wants enforced client-side.
type Service struct {
	name       string
	identity   *xcrypto.SigningKey
	contribKey *xcrypto.SigningKey
	verifier   *tee.QuoteVerifier
	pred       *predicate.Program
}

// New creates a service trusting the given attestation root.
func New(name string, attestationRoot *xcrypto.VerifyKey) (*Service, error) {
	if name == "" {
		return nil, errors.New("service: empty name")
	}
	identity, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, fmt.Errorf("service: identity key: %w", err)
	}
	contribKey, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, fmt.Errorf("service: contribution key: %w", err)
	}
	return &Service{
		name:       name,
		identity:   identity,
		contribKey: contribKey,
		verifier:   &tee.QuoteVerifier{Root: attestationRoot},
	}, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// IdentityKeyDER returns the service identity verification key in the form
// a Glimmer Config embeds.
func (s *Service) IdentityKeyDER() ([]byte, error) {
	return s.identity.Public().Marshal()
}

// ContributionVerifyKey returns the key that verifies Glimmer-signed
// contributions and verdicts.
func (s *Service) ContributionVerifyKey() *xcrypto.VerifyKey {
	return s.contribKey.Public()
}

// Vet adds a Glimmer measurement to the allowlist — the paper's "once it
// has been vetted, the hash of the Glimmer is published". Safe to call
// while provisioning or ingest runs concurrently: the underlying
// QuoteVerifier serializes allowlist growth against its readers.
func (s *Service) Vet(m tee.Measurement) { s.verifier.Allow(m) }

// SetPredicate fixes the validation predicate the service provisions. The
// service verifies it locally first; shipping an unverifiable predicate is
// a service bug, caught here rather than by every client.
func (s *Service) SetPredicate(p *predicate.Program) error {
	if _, err := predicate.Verify(p); err != nil {
		return fmt.Errorf("service: predicate rejected: %w", err)
	}
	s.pred = p
	return nil
}

// GlimmerConfig builds the client-side configuration for this service. The
// measurement of a Glimmer built from it is what Vet expects.
func (s *Service) GlimmerConfig(dim int, mode glimmer.Mode, policy glimmer.Policy) (glimmer.Config, error) {
	der, err := s.IdentityKeyDER()
	if err != nil {
		return glimmer.Config{}, err
	}
	return glimmer.Config{
		ServiceName: s.name,
		ServiceKey:  der,
		Dim:         dim,
		Mode:        mode,
		Policy:      policy,
	}, nil
}

// BasePayload assembles the provisioning payload common to every device:
// signing key and predicate. Callers add blinding material per device.
func (s *Service) BasePayload() (glimmer.ProvisionPayload, error) {
	if s.pred == nil {
		return glimmer.ProvisionPayload{}, errors.New("service: no predicate set")
	}
	keyDER, err := s.contribKey.Marshal()
	if err != nil {
		return glimmer.ProvisionPayload{}, err
	}
	return glimmer.ProvisionPayload{
		SigningKey: keyDER,
		Predicate:  predicate.Encode(s.pred),
	}, nil
}

// Provision runs the full provisioning protocol against one attestable
// enclave: verify its quote against the allowlist, authenticate ourselves,
// and install the payload over the session.
func (s *Service) Provision(dev Attestable, payload glimmer.ProvisionPayload) error {
	helloBytes, err := dev.Hello()
	if err != nil {
		return fmt.Errorf("service: hello: %w", err)
	}
	hello, err := attest.DecodeHello(helloBytes)
	if err != nil {
		return fmt.Errorf("service: hello: %w", err)
	}
	// The context must be our provisioning context (optionally suffixed
	// with a component role for decomposed Glimmers).
	want := glimmer.ProvisionContext(s.name)
	if hello.Context != want && !strings.HasPrefix(hello.Context, want+"#") {
		return fmt.Errorf("service: handshake context %q is not for this service", hello.Context)
	}
	session, resp, err := attest.Respond(hello, s.verifier, s.identity, hello.Context)
	if err != nil {
		return fmt.Errorf("service: attestation: %w", err)
	}
	if err := dev.Complete(attest.EncodeResponse(resp)); err != nil {
		return fmt.Errorf("service: complete: %w", err)
	}
	record, err := session.Send(glimmer.EncodeProvision(payload))
	if err != nil {
		return err
	}
	ackRecord, err := dev.Provision(record)
	if err != nil {
		return fmt.Errorf("service: provision: %w", err)
	}
	ack, err := session.Recv(ackRecord)
	if err != nil {
		return fmt.Errorf("service: acknowledgement: %w", err)
	}
	if string(ack) != "provisioned" {
		return fmt.Errorf("service: unexpected acknowledgement %q", ack)
	}
	return nil
}
