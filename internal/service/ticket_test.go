package service

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/race"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// testTicket is the client half of a granted ticket: what an enclave would
// hold after ticket-install, reconstructed here from the grant exchange.
type testTicket struct {
	id          uint64
	key         xcrypto.SessionKey
	first, last uint64
}

// grantTestTicket runs the full client side of the grant exchange against
// granter (a RoundManager or Registry): fresh DH value, ECDSA-signed
// request, decode the grant, derive the session key.
func grantTestTicket(t *testing.T, granter interface {
	GrantTicket([]byte) ([]byte, error)
}, serviceName string, signKey *xcrypto.SigningKey, meas tee.Measurement, first, last uint64) testTicket {
	t.Helper()
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	req := wire.TicketRequest{
		Service:     serviceName,
		DevicePub:   dh.PublicBytes(),
		Measurement: meas[:],
		RoundFirst:  first,
		RoundLast:   last,
	}
	if signKey != nil {
		sig, err := signKey.Sign(req.SignedBytes())
		if err != nil {
			t.Fatal(err)
		}
		req.Signature = sig
	}
	grantRaw, err := granter.GrantTicket(wire.EncodeTicketRequest(req))
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	grant, err := wire.DecodeTicketGrant(grantRaw)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := dh.Shared(grant.ServerPub)
	if err != nil {
		t.Fatal(err)
	}
	return testTicket{
		id:    grant.ID,
		key:   xcrypto.DeriveTicketKey(shared, serviceName, grant.ID),
		first: grant.RoundFirst,
		last:  grant.RoundLast,
	}
}

// ticketedRaw seals one MAC'd contribution under the ticket.
func ticketedRaw(serviceName string, round uint64, dim, salt int, tk testTicket) []byte {
	tc := glimmer.TicketedContribution{
		ServiceName: serviceName,
		Round:       round,
		TicketID:    tk.id,
		Blinded:     make(fixed.Vector, dim),
		Confidence:  1,
	}
	for j := range tc.Blinded {
		tc.Blinded[j] = fixed.Ring(uint64(salt)*1000003 + round*31 + uint64(j))
	}
	return glimmer.SealTicketedContribution(tc, &tk.key)
}

func newTicketedManager(t *testing.T, key *xcrypto.SigningKey, dim int, tcfg TicketConfig) *RoundManager {
	t.Helper()
	var verify *xcrypto.VerifyKey
	if key != nil {
		verify = key.Public()
	}
	m := NewRoundManager(PipelineConfig{
		ServiceName: "tickets.example",
		Verify:      verify,
		Dim:         dim,
		Tickets:     NewTicketTable(tcfg),
	})
	return m
}

// TestTicketGrantAndIngest is the end-to-end happy path: one ECDSA-signed
// grant, then a round of MAC'd contributions — with a signed (ECDSA)
// straggler in the same round proving the fallback path coexists — summing
// exactly.
func TestTicketGrantAndIngest(t *testing.T) {
	const dim = 8
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	m := newTicketedManager(t, key, dim, TicketConfig{})
	meas := tee.Measurement{7}
	m.Vet(meas)

	tk := grantTestTicket(t, m, "tickets.example", key, meas, 1, 16)
	if tk.first != 1 || tk.last != 16 {
		t.Fatalf("granted window [%d, %d], want [1, 16]", tk.first, tk.last)
	}

	want := fixed.NewVector(dim)
	for i := 0; i < 10; i++ {
		raw := ticketedRaw("tickets.example", 3, dim, i, tk)
		tc, err := glimmer.DecodeTicketedContribution(raw)
		if err != nil {
			t.Fatal(err)
		}
		want.AddInPlace(tc.Blinded)
		if err := m.Ingest(raw); err != nil {
			t.Fatalf("ticketed contribution %d refused: %v", i, err)
		}
	}
	// The ECDSA fallback still works in the same round.
	sc := glimmer.SignedContribution{
		ServiceName: "tickets.example",
		Round:       3,
		Measurement: meas,
		Blinded:     make(fixed.Vector, dim),
		Confidence:  1,
	}
	for j := range sc.Blinded {
		sc.Blinded[j] = fixed.Ring(uint64(j) + 999)
	}
	sig, err := key.Sign(sc.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	sc.Signature = sig
	want.AddInPlace(sc.Blinded)
	if err := m.Ingest(glimmer.EncodeSignedContribution(sc)); err != nil {
		t.Fatalf("signed fallback refused: %v", err)
	}

	p, ok := m.Lookup(3)
	if !ok {
		t.Fatal("round 3 not created")
	}
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Count() != 11 {
		t.Fatalf("count = %d, want 11", p.Count())
	}
	got := p.Sum()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTicketedRefusals pins the fast path's entire refusal surface.
func TestTicketedRefusals(t *testing.T) {
	const dim = 4
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1_700_000_000)
	clock := func() int64 { return now }
	m := newTicketedManager(t, key, dim, TicketConfig{TTL: 100, MaxWindow: 8, Now: clock})
	meas := tee.Measurement{7}
	m.Vet(meas)
	tk := grantTestTicket(t, m, "tickets.example", key, meas, 1, 100)
	if tk.last != 1+8 {
		t.Fatalf("window not clamped: last = %d, want 9", tk.last)
	}

	good := ticketedRaw("tickets.example", 2, dim, 1, tk)
	if err := m.Ingest(good); err != nil {
		t.Fatalf("good ticketed contribution refused: %v", err)
	}

	// Forged MAC: flip one tag byte.
	forged := append([]byte(nil), ticketedRaw("tickets.example", 2, dim, 2, tk)...)
	forged[len(forged)-1] ^= 0x01
	if err := m.Ingest(forged); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("forged MAC err = %v, want ErrBadMAC", err)
	}

	// Unknown ticket: valid structure, an ID the table never granted. The
	// MAC is sealed under a random key, so even the right key check would
	// fail — but the table lookup must refuse first.
	ghost := testTicket{id: tk.id ^ 0xFFFF, key: xcrypto.SessionKey{9}}
	if err := m.Ingest(ticketedRaw("tickets.example", 2, dim, 3, ghost)); !errors.Is(err, ErrUnknownTicket) {
		t.Fatalf("unknown ticket err = %v, want ErrUnknownTicket", err)
	}

	// Round outside the granted window.
	if err := m.Ingest(ticketedRaw("tickets.example", 50, dim, 4, tk)); !errors.Is(err, ErrTicketWindow) {
		t.Fatalf("out-of-window err = %v, want ErrTicketWindow", err)
	}

	// Duplicate of an accepted ticketed contribution.
	if err := m.Ingest(good); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v, want ErrDuplicate", err)
	}

	// Wrong dimension.
	if err := m.Ingest(ticketedRaw("tickets.example", 2, dim+1, 5, tk)); !errors.Is(err, ErrWrongDim) {
		t.Fatalf("wrong-dim err = %v, want ErrWrongDim", err)
	}

	// Wrong service name: refused before any table access.
	if err := m.Ingest(ticketedRaw("other.example", 2, dim, 6, tk)); !errors.Is(err, ErrWrongService) {
		t.Fatalf("wrong-service err = %v, want ErrWrongService", err)
	}

	// Expired: advance the clock past the TTL; renewal re-grants.
	now += 101
	if err := m.Ingest(ticketedRaw("tickets.example", 2, dim, 7, tk)); !errors.Is(err, ErrTicketExpired) {
		t.Fatalf("expired err = %v, want ErrTicketExpired", err)
	}
	renewed := grantTestTicket(t, m, "tickets.example", key, meas, 1, 8)
	if err := m.Ingest(ticketedRaw("tickets.example", 2, dim, 8, renewed)); err != nil {
		t.Fatalf("renewed ticket refused: %v", err)
	}
}

// TestTicketGrantRefusals pins the control plane: bad signature, unvetted
// measurement, wrong service, inverted window, disabled tickets.
func TestTicketGrantRefusals(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	wrongKey, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	m := newTicketedManager(t, key, 4, TicketConfig{})
	meas := tee.Measurement{7}
	m.Vet(meas)

	makeReq := func(mutate func(*wire.TicketRequest), signWith *xcrypto.SigningKey) []byte {
		dh, err := xcrypto.NewDHKey()
		if err != nil {
			t.Fatal(err)
		}
		req := wire.TicketRequest{
			Service:     "tickets.example",
			DevicePub:   dh.PublicBytes(),
			Measurement: meas[:],
			RoundFirst:  1,
			RoundLast:   4,
		}
		if mutate != nil {
			mutate(&req)
		}
		sig, err := signWith.Sign(req.SignedBytes())
		if err != nil {
			t.Fatal(err)
		}
		req.Signature = sig
		return wire.EncodeTicketRequest(req)
	}

	if _, err := m.GrantTicket(makeReq(nil, wrongKey)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong-key grant err = %v, want ErrBadSignature", err)
	}
	if _, err := m.GrantTicket(makeReq(func(r *wire.TicketRequest) {
		r.Measurement = make([]byte, 32)
	}, key)); !errors.Is(err, ErrUnknownGlimmer) {
		t.Fatalf("unvetted grant err = %v, want ErrUnknownGlimmer", err)
	}
	if _, err := m.GrantTicket(makeReq(func(r *wire.TicketRequest) {
		r.Service = "other.example"
	}, key)); !errors.Is(err, ErrWrongService) {
		t.Fatalf("wrong-service grant err = %v, want ErrWrongService", err)
	}
	if _, err := m.GrantTicket(makeReq(func(r *wire.TicketRequest) {
		r.RoundFirst, r.RoundLast = 9, 3
	}, key)); err == nil {
		t.Fatal("inverted window granted")
	}
	if _, err := m.GrantTicket([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("undecodable request granted")
	}

	// A manager without a table refuses grants and ticketed traffic alike.
	bare := NewRoundManager(PipelineConfig{ServiceName: "tickets.example", Verify: key.Public(), Dim: 4})
	bare.Vet(meas)
	if _, err := bare.GrantTicket(makeReq(nil, key)); !errors.Is(err, ErrTicketsDisabled) {
		t.Fatalf("disabled grant err = %v, want ErrTicketsDisabled", err)
	}
	tk := grantTestTicket(t, m, "tickets.example", key, meas, 1, 4)
	if err := bare.Ingest(ticketedRaw("tickets.example", 2, 4, 0, tk)); !errors.Is(err, ErrUnknownTicket) {
		t.Fatalf("ticketless-tenant ingest err = %v, want ErrUnknownTicket", err)
	}
}

// TestTicketTableBoundsAndEviction: the table never exceeds MaxTickets;
// expired entries are dropped first, then the soonest-expiring live one.
func TestTicketTableBoundsAndEviction(t *testing.T) {
	now := int64(1000)
	tbl := NewTicketTable(TicketConfig{MaxTickets: 3, TTL: 50, Now: func() int64 { return now }})
	tbl.Install(1, xcrypto.SessionKey{1}, 0, 10, now+10)
	tbl.Install(2, xcrypto.SessionKey{2}, 0, 10, now+20)
	tbl.Install(3, xcrypto.SessionKey{3}, 0, 10, now+30)
	if tbl.Len() != 3 {
		t.Fatalf("len = %d, want 3", tbl.Len())
	}
	// At the bound with nothing expired: ticket 1 (soonest expiry) loses.
	tbl.Install(4, xcrypto.SessionKey{4}, 0, 10, now+40)
	if tbl.Len() != 3 {
		t.Fatalf("len = %d, want 3 after eviction", tbl.Len())
	}
	if _, err := tbl.check(1, 5); !errors.Is(err, ErrUnknownTicket) {
		t.Fatalf("soonest-expiring ticket not evicted: %v", err)
	}
	if _, err := tbl.check(2, 5); err != nil {
		t.Fatalf("ticket 2 lost: %v", err)
	}
	// Expire 2 and 3; the next insert reclaims both slots instead of
	// evicting the live ticket 4.
	now += 35
	tbl.Install(5, xcrypto.SessionKey{5}, 0, 10, now+40)
	if _, err := tbl.check(4, 5); err != nil {
		t.Fatalf("live ticket 4 evicted while expired entries existed: %v", err)
	}
	if _, err := tbl.check(5, 5); err != nil {
		t.Fatalf("ticket 5 lost: %v", err)
	}
	if tbl.Len() > 3 {
		t.Fatalf("len = %d exceeds bound", tbl.Len())
	}
}

// TestRegistryTicketRouting: grants route by the service the request
// names; cross-tenant ticketed traffic is refused without moving sums.
func TestRegistryTicketRouting(t *testing.T) {
	const dim = 4
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(0)
	for _, name := range []string{"a.example", "b.example"} {
		if _, err := reg.AddTenant(TenantConfig{
			Name:         name,
			Verify:       key.Public(),
			Dim:          dim,
			TicketPolicy: &TicketConfig{},
		}); err != nil {
			t.Fatal(err)
		}
	}
	meas := tee.Measurement{7}
	ta, _ := reg.Tenant("a.example")
	tb, _ := reg.Tenant("b.example")
	ta.Manager().Vet(meas)
	tb.Manager().Vet(meas)

	tk := grantTestTicket(t, reg, "a.example", key, meas, 1, 8)
	raw := ticketedRaw("a.example", 2, dim, 1, tk)
	if err := reg.Ingest(raw); err != nil {
		t.Fatalf("routed ticketed contribution refused: %v", err)
	}

	// The same ticket respelled for tenant b: routed there, refused there
	// (b's table never granted this ID), and b's state does not move.
	cross := ticketedRaw("b.example", 2, dim, 2, tk)
	if err := reg.Ingest(cross); err == nil {
		t.Fatal("cross-tenant ticketed contribution accepted")
	}
	if rounds := tb.Manager().Rounds(); len(rounds) != 0 {
		t.Fatalf("cross-tenant probe created rounds %v on the victim", rounds)
	}

	// Grant for a tenant the registry does not host.
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	req := wire.TicketRequest{
		Service:     "ghost.invalid",
		DevicePub:   dh.PublicBytes(),
		Measurement: meas[:],
		RoundFirst:  1,
		RoundLast:   2,
	}
	sig, err := key.Sign(req.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	req.Signature = sig
	if _, err := reg.GrantTicket(wire.EncodeTicketRequest(req)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("ghost grant err = %v, want ErrUnknownTenant", err)
	}
}

// TestTicketedRoundCreationGated: a ticketed contribution can bring a new
// round into existence only when its MAC verifies — unauthenticated bytes
// still cannot allocate rounds on the fast path.
func TestTicketedRoundCreationGated(t *testing.T) {
	const dim = 4
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	m := newTicketedManager(t, key, dim, TicketConfig{})
	meas := tee.Measurement{7}
	m.Vet(meas)
	tk := grantTestTicket(t, m, "tickets.example", key, meas, 1, 16)

	forged := append([]byte(nil), ticketedRaw("tickets.example", 9, dim, 1, tk)...)
	forged[len(forged)-1] ^= 0x01
	if err := m.Ingest(forged); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("forged err = %v, want ErrBadMAC", err)
	}
	if _, ok := m.Lookup(9); ok {
		t.Fatal("forged ticketed contribution created a round")
	}
	if err := m.Ingest(ticketedRaw("tickets.example", 9, dim, 2, tk)); err != nil {
		t.Fatalf("genuine ticketed contribution refused: %v", err)
	}
	if _, ok := m.Lookup(9); !ok {
		t.Fatal("genuine ticketed contribution did not create its round")
	}
	if got := m.Rejected(); got != 1 {
		t.Fatalf("manager rejected = %d, want 1", got)
	}
}

// TestPooledMACScratchNotAliasedAcrossConcurrentAddBatch is the -race
// guard for the pooled HMAC scratch: many goroutines push overlapping
// ticketed batches through a pooled-worker pipeline across all shards, and
// the sealed aggregate must equal the exact element-wise sum of every
// distinct contribution. A MACState or ticket scratch recycled while
// another worker still uses it would corrupt a MAC check or the sum (and
// trip the race detector).
func TestPooledMACScratchNotAliasedAcrossConcurrentAddBatch(t *testing.T) {
	const (
		dim       = 32
		perCaller = 64
		callers   = 6
		round     = uint64(5)
	)
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	m := newTicketedManager(t, key, dim, TicketConfig{})
	meas := tee.Measurement{7}
	m.Vet(meas)
	// One ticket per caller: concurrent MAC checks resolve different keys.
	tickets := make([]testTicket, callers)
	for c := range tickets {
		tickets[c] = grantTestTicket(t, m, "tickets.example", key, meas, 1, 16)
	}
	all := make([][]byte, 0, callers*perCaller)
	want := fixed.NewVector(dim)
	for c := 0; c < callers; c++ {
		for i := 0; i < perCaller; i++ {
			raw := ticketedRaw("tickets.example", round, dim, c*perCaller+i, tickets[c])
			tc, err := glimmer.DecodeTicketedContribution(raw)
			if err != nil {
				t.Fatal(err)
			}
			want.AddInPlace(tc.Blinded)
			all = append(all, raw)
		}
	}
	p := m.Round(round)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		batch := all[c*perCaller : (c+1)*perCaller]
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs := m.IngestBatch(batch)
			for _, err := range errs {
				if err != nil {
					t.Errorf("IngestBatch: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Count() != len(all) {
		t.Fatalf("count = %d, want %d", p.Count(), len(all))
	}
	got := p.Sum()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v, want %v (MAC scratch aliasing?)", i, got[i], want[i])
		}
	}
	// The fast path must not have weakened forgery resistance under
	// concurrency: a flipped MAC still bounces.
	forged := append([]byte(nil), bytes.Clone(all[0])...)
	forged[len(forged)-1] ^= 0x01
	if err := m.Ingest(forged); !errors.Is(err, ErrBadMAC) && !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("forged err = %v, want ErrBadMAC or ErrRoundSealed", err)
	}
}

// TestTicketedIngestAllocFree pins the tentpole contract end to end on the
// service layer: with a warmed pipeline, steady-state ticketed ingest —
// decode, table check, session MAC, dedup insert, accumulate — performs
// zero heap allocations per contribution.
func TestTicketedIngestAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	const runs = 300
	const dim = 64
	tbl := NewTicketTable(TicketConfig{})
	tk := testTicket{id: 42, key: xcrypto.SessionKey{1, 2, 3}, first: 1, last: 16}
	tbl.Install(tk.id, tk.key, tk.first, tk.last, 1<<62)
	raws := make([][]byte, runs+50)
	for i := range raws {
		raws[i] = ticketedRaw("alloc.example", 7, dim, i, tk)
	}
	p := NewPipeline(PipelineConfig{
		ServiceName:    "alloc.example",
		Dim:            dim,
		Round:          7,
		Tickets:        tbl,
		Workers:        1,
		Shards:         1,
		ExpectedCohort: len(raws),
	})
	if err := p.Add(raws[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	if got := testing.AllocsPerRun(runs, func() {
		i++
		if err := p.Add(raws[i]); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("ticketed ingest: %.1f allocs/op, want 0", got)
	}
	if p.Count() != i+1 {
		t.Fatalf("count = %d, want %d", p.Count(), i+1)
	}
}

// TestTicketCheckAllocFree pins the table lookup alone: with the default
// wall clock (withDefaults caches a concrete func at construction — the
// nil-vs-injected choice must not be resolved per check), check performs
// zero allocations.
func TestTicketCheckAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	tbl := NewTicketTable(TicketConfig{}) // nil Now: the cached time.Now path
	tbl.Install(42, xcrypto.SessionKey{1, 2, 3}, 1, 16, 1<<62)
	if got := testing.AllocsPerRun(1000, func() {
		if _, err := tbl.check(42, 7); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("ticket check: %.1f allocs/op, want 0", got)
	}
}
