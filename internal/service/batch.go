package service

import (
	"encoding/binary"
	"fmt"
	"sync"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/xcrypto"
)

// The batch ingest plan. The per-item hot path pays, for every ticketed
// contribution: a scratch decode that materializes the vector, a ticket
// table read, an HMAC whose key schedule is recomputed from scratch, and a
// shard lock acquisition. A batch shares almost all of that: contributions
// in one frame overwhelmingly name the same ticket (same session key, same
// table row) and land across a handful of shards. So AddBatch restructures
// the work into phases over a per-batch arena:
//
//  1. decode every frame into a zero-copy TicketedView (vectors stay as
//     wire lane bytes) and run the cheap identity checks in submission
//     order — error slots and the rejected counter land exactly where the
//     per-item path would put them;
//  2. resolve each distinct ticket against the table once, then verify all
//     MACs under a key whose HMAC pad states are computed once per ticket
//     (xcrypto.MACState.SetKey) instead of once per message;
//  3. counting-sort the survivors by dedup shard — the sort is stable, so
//     per-shard processing preserves submission order and duplicates
//     resolve identically to the per-item path — and take each shard lock
//     once, bulk-inserting digests and accumulating vectors straight from
//     the frames' lane bytes (fixed.AccumulateWireInto).
//
// The arena is reset once per batch rather than a scratch being pooled per
// item, and is returned to its pool with every frame view cleared: the
// must-not-retain contract is the same one putScratch enforces.
//
// Signed (ECDSA) contributions are legal in a batch but take the per-item
// path inline at their submission position; the batch plan exists for the
// ticketed fast path, which is where the volume is.

// batchItem is one ticketed contribution's phase state.
type batchItem struct {
	idx    int // position in the submitted batch
	group  int // index into ingestArena.groups
	shard  uint64
	ok     bool // survived phases 1–2; eligible for the shard phase
	digest [32]byte
	view   glimmer.TicketedView
}

// ticketGroup is one distinct ticket named by the batch, resolved against
// the table exactly once.
type ticketGroup struct {
	id  uint64
	key xcrypto.SessionKey
	err error
}

// ingestArena is the per-batch scratch: everything the batch plan needs,
// reset once per batch and pooled across batches (and pipelines — the
// arena is workload-shaped, not round-shaped).
type ingestArena struct {
	items  []batchItem
	groups []ticketGroup
	counts []int32 // counting sort: per-shard item counts, then offsets
	starts []int32 // counting sort: per-shard segment starts
	order  []int32 // item indices, stably grouped by shard

	// Journal scratch: the frame's accepted-digest list and summed delta,
	// handed to Journal.BatchAccepted (which must not retain them — the
	// same contract the arena itself rides on).
	jdigests [][32]byte
	jdelta   fixed.Vector
}

var arenaPool = sync.Pool{New: func() any { return new(ingestArena) }}

// batchMACs keeps the keyed HMAC pad caches warm across batches: a frame
// stream naming the same ticket skips the key schedule entirely after the
// first batch.
var batchMACs = xcrypto.NewBatchVerifier()

// release clears every frame view and returns the arena to the pool. An
// idle pooled arena must not keep a transport's frame buffers reachable.
func (a *ingestArena) release() {
	for i := range a.items {
		a.items[i].view.Clear()
	}
	a.items = a.items[:0]
	a.groups = a.groups[:0]
	arenaPool.Put(a)
}

// group returns the index of the ticket group for id, creating it on first
// sight. Batches name very few distinct tickets, so a linear scan beats a
// map (and allocates nothing).
func (a *ingestArena) group(id uint64) int {
	for i := range a.groups {
		if a.groups[i].id == id {
			return i
		}
	}
	a.groups = append(a.groups, ticketGroup{id: id})
	return len(a.groups) - 1
}

// AddBatchErrs is AddBatch writing into a caller-owned error slice (one
// slot per input, nil for accepted), so steady-state callers can reuse the
// slice and keep the whole submission allocation-free. It blocks until the
// batch has settled. len(errs) must equal len(raws).
func (p *Pipeline) AddBatchErrs(raws [][]byte, errs []error) {
	if len(errs) != len(raws) {
		panic(fmt.Sprintf("service: AddBatchErrs got %d error slots for %d inputs", len(errs), len(raws)))
	}
	if len(raws) == 0 {
		return
	}
	// Accepted items never write their slot, so a reused errs slice must
	// start clean.
	for i := range errs {
		errs[i] = nil
	}
	if err := p.enter(len(raws)); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return
	}
	if p.cfg.Workers == 1 {
		// Serial plan: the whole batch through one arena, inline.
		p.processBatch(raws, errs)
		p.pending.Add(-len(raws))
		return
	}
	p.poolOnce.Do(p.startPool)
	var wg sync.WaitGroup
	chunk := (len(raws) + p.cfg.Workers - 1) / p.cfg.Workers
	if chunk < minBatchChunk {
		chunk = minBatchChunk
	}
	for start := 0; start < len(raws); start += chunk {
		end := start + chunk
		if end > len(raws) {
			end = len(raws)
		}
		wg.Add(1)
		p.jobs <- batchJob{raws: raws[start:end], errs: errs[start:end], wg: &wg}
	}
	wg.Wait()
}

// minBatchChunk bounds fan-out granularity: below this, handoff overhead
// beats the parallelism.
const minBatchChunk = 16

// processBatch runs the three-phase plan over one batch. Accept/reject
// decisions, error values, and the rejected counter match the per-item
// path exactly; only the cost shape differs.
func (p *Pipeline) processBatch(raws [][]byte, errs []error) {
	a := arenaPool.Get().(*ingestArena)
	defer a.release()

	// Phase 1: decode and cheap identity checks, in submission order.
	// Signed-variant contributions take the per-item path right here, at
	// their submission position.
	for i, raw := range raws {
		if !glimmer.PeekContributionTicketed(raw) {
			errs[i] = p.process(raw)
			continue
		}
		if cap(a.items) > len(a.items) {
			a.items = a.items[:len(a.items)+1]
		} else {
			a.items = append(a.items, batchItem{})
		}
		it := &a.items[len(a.items)-1]
		it.idx, it.ok = i, false
		if err := it.view.Decode(raw); err != nil {
			errs[i] = p.reject(fmt.Errorf("service: %w", err))
			continue
		}
		if string(it.view.ServiceName) != p.cfg.ServiceName {
			errs[i] = p.reject(ErrWrongService)
			continue
		}
		if it.view.Round != p.cfg.Round {
			errs[i] = p.reject(ErrWrongRound)
			continue
		}
		if it.view.Lanes() != p.cfg.Dim {
			errs[i] = p.reject(ErrWrongDim)
			continue
		}
		if p.cfg.Tickets == nil {
			errs[i] = p.reject(ErrUnknownTicket)
			continue
		}
		it.group = a.group(it.view.TicketID)
		it.ok = true
	}

	// Phase 2: resolve each distinct ticket once, then verify every MAC
	// under cached pad states. Items are in submission order, which is
	// almost always a single run of one ticket, so SetKey is a no-op for
	// all but the first item of each run.
	if len(a.groups) > 0 {
		for gi := range a.groups {
			g := &a.groups[gi]
			// Every item in the group already passed the round check, so
			// the group resolves at the pipeline's round — the same
			// (ticket, round) pair the per-item path would present.
			g.key, g.err = p.cfg.Tickets.check(g.id, p.cfg.Round)
		}
		m := batchMACs.Get()
		for i := range a.items {
			it := &a.items[i]
			if !it.ok {
				continue
			}
			g := &a.groups[it.group]
			if g.err != nil {
				it.ok = false
				errs[it.idx] = p.reject(g.err)
				continue
			}
			m.SetKey(&g.key)
			head, tail := it.view.PreimageParts()
			if !m.VerifyKeyed(head, tail, it.view.MAC) {
				it.ok = false
				errs[it.idx] = p.reject(ErrBadMAC)
				continue
			}
			// The verified MAC doubles as the dedup digest, exactly as on
			// the per-item path.
			copy(it.digest[:], it.view.MAC)
			it.shard = binary.BigEndian.Uint64(it.digest[:8]) & p.shardMask
		}
		batchMACs.Put(m)
	}

	// Phase 3: stable counting sort by shard, then one lock per shard.
	nShards := len(p.shards)
	if cap(a.counts) < nShards {
		a.counts = make([]int32, nShards)
		a.starts = make([]int32, nShards)
	}
	counts := a.counts[:nShards]
	starts := a.starts[:nShards]
	for i := range counts {
		counts[i] = 0
	}
	live := 0
	for i := range a.items {
		if a.items[i].ok {
			counts[a.items[i].shard]++
			live++
		}
	}
	if live == 0 {
		return
	}
	if cap(a.order) < live {
		a.order = make([]int32, live)
	}
	order := a.order[:live]
	off := int32(0)
	for s := range counts {
		starts[s] = off
		off += counts[s]
		counts[s] = starts[s] // reuse as the scatter cursor
	}
	for i := range a.items {
		if it := &a.items[i]; it.ok {
			order[counts[it.shard]] = int32(i)
			counts[it.shard]++
		}
	}
	dups := 0
	for s := range starts {
		lo := starts[s]
		hi := counts[s] // cursor ended at the segment's end
		if lo == hi {
			continue
		}
		sh := p.shards[s]
		sh.mu.Lock()
		for _, k := range order[lo:hi] {
			it := &a.items[k]
			if sh.seen[it.digest] {
				errs[it.idx] = ErrDuplicate
				p.rejected.Add(1)
				dups++
				continue
			}
			sh.seen[it.digest] = true
			fixed.AccumulateWireInto(sh.sum, it.view.LaneBytes)
			sh.count++
		}
		sh.mu.Unlock()
	}

	// One watermark record for the whole frame, journaled outside every
	// shard lock while the arena's views are still alive. The digest list
	// and delta live in the arena: the journal encodes synchronously and
	// must not retain them, so the scratch recycles with the arena.
	if j := p.journal; j != nil {
		accepted := live - dups
		if accepted > 0 {
			digests := a.jdigests[:0]
			if len(a.jdelta) != p.cfg.Dim {
				a.jdelta = fixed.NewVector(p.cfg.Dim)
			}
			delta := a.jdelta
			for i := range delta {
				delta[i] = 0
			}
			for i := range a.items {
				it := &a.items[i]
				if it.ok && errs[it.idx] == nil {
					digests = append(digests, it.digest)
					fixed.AccumulateWireInto(delta, it.view.LaneBytes)
				}
			}
			a.jdigests = digests
			j.BatchAccepted(p.cfg.ServiceName, p.cfg.Round, digests, delta)
		}
		if dups > 0 {
			j.Rejected(p.cfg.ServiceName, p.cfg.Round, LevelRound, dups)
		}
	}
}
