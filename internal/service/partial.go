package service

import (
	"errors"
	"fmt"
	"sync"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Partial-seal export and merge: the service-layer half of the fleet.
//
// A round sharded across nodes produces one partial aggregate per node.
// Export (Pipeline.PartialSeal) seals the local cohort and emits a signed
// wire.PartialSeal carrying the blinded partial sum, the accept/reject
// accounting, and the full dedup-digest coverage. Merge (the coordinator
// side) folds partials back into the round's exact sum — and because the
// seals carry their digests, the coordinator can demand *disjoint cohort
// coverage*: no contribution may appear in two partials, so the merged
// sum is exactly the single-node sum of the union cohort, and the
// zero-sum dealer masks cancel the moment the union covers the full
// cohort. The coordinator verifies signatures and disjointness but never
// sees an unblinded value, so it stays outside the trust boundary — the
// same minimize-the-trusted-core move the paper makes for the service
// itself.

// Merge refusal sentinels. Each names the check that turned a seal away;
// a refused seal never perturbs the merge (all-or-nothing absorption).
var (
	// ErrSealMismatch: the seal names a different service/round/dimension
	// or a shard count that disagrees with the merge.
	ErrSealMismatch = errors.New("service: partial seal does not match this merge")
	// ErrSealUnknownNode: the sealing node is not in the merge's expected
	// set.
	ErrSealUnknownNode = errors.New("service: partial seal from unexpected node")
	// ErrSealReplay: this node's partial was already absorbed.
	ErrSealReplay = errors.New("service: partial seal replayed")
	// ErrSealIdentity: the seal's key or measurement contradicts the
	// node's registered (or TOFU-pinned) identity.
	ErrSealIdentity = errors.New("service: partial seal identity mismatch")
	// ErrSealSignature: the signature does not verify.
	ErrSealSignature = errors.New("service: partial seal signature invalid")
	// ErrSealOverlap: the seal claims a contribution another partial
	// already covers — double-counting, refused wholesale.
	ErrSealOverlap = errors.New("service: partial seal overlaps an absorbed partial")
	// ErrMergeComplete: the merge already has every partial it expects.
	ErrMergeComplete = errors.New("service: merge already complete")
)

// NodeSeal is a node's sealing identity: its ring ID, how many partials
// it believes the round splits into, and the enclave measurement + key
// it signs with.
type NodeSeal struct {
	NodeID      uint32
	ShardCount  uint32
	Measurement tee.Measurement
	Key         *xcrypto.SigningKey
}

// PartialSeal seals the round (idempotent; a closed round exports its
// immutable aggregate) and returns the node's signed partial seal. The
// export walks the same path durable snapshots use, so the digests are
// the exact dedup coverage and the sum is the merged shard total.
func (p *Pipeline) PartialSeal(n NodeSeal) ([]byte, error) {
	if n.Key == nil {
		return nil, errors.New("service: partial seal needs a node signing key")
	}
	if err := p.Seal(); err != nil && !errors.Is(err, ErrRoundClosed) {
		return nil, err
	}
	rs := p.exportRound()
	digests := make([]byte, 0, len(rs.Digests)*wire.SealDigestLen)
	for i := range rs.Digests {
		digests = append(digests, rs.Digests[i][:]...)
	}
	der, err := n.Key.Public().Marshal()
	if err != nil {
		return nil, fmt.Errorf("service: partial seal: %w", err)
	}
	seal := wire.PartialSeal{
		Service:     p.cfg.ServiceName,
		Round:       p.cfg.Round,
		NodeID:      n.NodeID,
		ShardCount:  n.ShardCount,
		Measurement: n.Measurement[:],
		NodeKey:     der,
		Count:       rs.Count,
		Rejected:    rs.Rejected,
		Sum:         glimmer.VectorToBits(rs.Sum),
		Digests:     digests,
	}
	sig, err := n.Key.Sign(seal.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("service: partial seal: %w", err)
	}
	seal.Signature = sig
	return wire.EncodePartialSeal(seal), nil
}

// ExportPartialSeal seals the given round and exports its partial seal.
// An unknown round is an error — exporting an empty partial for a round
// the node never opened would let a confused node vote down a merge.
func (m *RoundManager) ExportPartialSeal(round uint64, n NodeSeal) ([]byte, error) {
	p, ok := m.Lookup(round)
	if !ok {
		return nil, fmt.Errorf("service: export partial seal: unknown round %d", round)
	}
	return p.PartialSeal(n)
}

// MergeNode is one node's registered identity on the coordinator: the
// verify key its seals must carry and the enclave measurement it must
// report.
type MergeNode struct {
	Verify      *xcrypto.VerifyKey
	Measurement tee.Measurement
}

// MergeConfig fixes one round-merge's expectations.
type MergeConfig struct {
	// ServiceName, Dim, Round identify the round being merged. Dim 0
	// adopts the first accepted seal's dimension (hub/dynamic mode).
	ServiceName string
	Dim         int
	Round       uint64
	// Expect lists the node IDs whose partials complete the merge. Nil
	// switches to dynamic mode: the first valid seal's ShardCount sets
	// how many partials are needed and any node may contribute one.
	Expect []uint32
	// Nodes maps node IDs to registered identities. A seal from a node
	// with no entry is refused unless AllowTOFU is set, in which case the
	// first seal pins the node's key + measurement and later seals must
	// match the pin.
	Nodes map[uint32]MergeNode
	// AllowTOFU enables trust-on-first-use pinning for unregistered
	// nodes — the deployment mode where node keys are generated per
	// process and no out-of-band registry exists (pins have exactly the
	// known-hosts semantics the edge already uses).
	AllowTOFU bool
	// Pins, when set, is a pin store shared across merges (the hub wires
	// one in), so a node identity pinned in one round constrains every
	// later round. Nil gives the merge a private store.
	Pins *NodePins
}

// NodePins is a trust-on-first-use store of node identities: the first
// seal a node ID ever presents pins its verify-key fingerprint and
// measurement, and every later seal under that ID — in any round sharing
// the store — must match the pin.
type NodePins struct {
	mu   sync.Mutex
	pins map[uint32]mergePin
}

func (np *NodePins) get(node uint32) (mergePin, bool) {
	np.mu.Lock()
	defer np.mu.Unlock()
	p, ok := np.pins[node]
	return p, ok
}

// pin records a node's identity if it has none yet.
func (np *NodePins) pin(node uint32, p mergePin) {
	np.mu.Lock()
	defer np.mu.Unlock()
	if np.pins == nil {
		np.pins = make(map[uint32]mergePin)
	}
	if _, ok := np.pins[node]; !ok {
		np.pins[node] = p
	}
}

// Merge folds one round's partial seals into its exact sum. Absorption
// is all-or-nothing: every check passes before any state changes, so a
// refused seal — forged, replayed, overlapping, stale — leaves the merge
// exactly as it was.
type Merge struct {
	cfg MergeConfig

	pins *NodePins

	mu         sync.Mutex
	shardCount uint32 // partials needed; 0 until known (dynamic mode)
	expect     map[uint32]bool
	absorbed   map[uint32]bool
	seen       map[[wire.SealDigestLen]byte]uint32 // digest -> absorbing node
	sum        fixed.Vector
	count      uint64
	rejected   uint64
	refused    uint64
}

type mergePin struct {
	key         [32]byte // verify-key fingerprint
	measurement tee.Measurement
}

// NewMerge starts a merge for one round.
func NewMerge(cfg MergeConfig) *Merge {
	m := &Merge{
		cfg:      cfg,
		pins:     cfg.Pins,
		absorbed: make(map[uint32]bool),
		seen:     make(map[[wire.SealDigestLen]byte]uint32),
	}
	if m.pins == nil {
		m.pins = &NodePins{}
	}
	if len(cfg.Expect) > 0 {
		m.shardCount = uint32(len(cfg.Expect))
		m.expect = make(map[uint32]bool, len(cfg.Expect))
		for _, n := range cfg.Expect {
			m.expect[n] = true
		}
	}
	if cfg.Dim > 0 {
		m.sum = fixed.NewVector(cfg.Dim)
	}
	return m
}

// Absorb validates and folds one encoded partial seal. On refusal the
// merge is untouched and the refused counter is bumped.
func (m *Merge) Absorb(raw []byte) error {
	seal, err := wire.DecodePartialSeal(raw)
	if err != nil {
		m.mu.Lock()
		m.refused++
		m.mu.Unlock()
		return err
	}
	return m.absorbSeal(seal)
}

func (m *Merge) absorbSeal(seal wire.PartialSeal) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkSeal(seal); err != nil {
		m.refused++
		return err
	}
	// All checks passed — commit atomically.
	if m.sum == nil {
		m.sum = fixed.NewVector(len(seal.Sum))
	}
	if m.shardCount == 0 {
		m.shardCount = seal.ShardCount
	}
	if key, err := xcrypto.ParseVerifyKey(seal.NodeKey); err == nil {
		var meas tee.Measurement
		copy(meas[:], seal.Measurement)
		m.pins.pin(seal.NodeID, mergePin{key: key.Fingerprint(), measurement: meas})
	}
	fixed.AccumulateInto(m.sum, seal.Sum)
	for i := 0; i < seal.DigestCount(); i++ {
		m.seen[seal.DigestAt(i)] = seal.NodeID
	}
	m.absorbed[seal.NodeID] = true
	m.count += seal.Count
	m.rejected += seal.Rejected
	return nil
}

// checkSeal runs every refusal check without mutating anything. Caller
// holds m.mu.
func (m *Merge) checkSeal(seal wire.PartialSeal) error {
	if seal.Service != m.cfg.ServiceName || seal.Round != m.cfg.Round {
		return fmt.Errorf("%w: seal is for %s/%d, merge is %s/%d",
			ErrSealMismatch, seal.Service, seal.Round, m.cfg.ServiceName, m.cfg.Round)
	}
	if m.cfg.Dim > 0 && len(seal.Sum) != m.cfg.Dim {
		return fmt.Errorf("%w: seal sum has %d lanes, merge wants %d",
			ErrSealMismatch, len(seal.Sum), m.cfg.Dim)
	}
	if m.sum != nil && len(seal.Sum) != len(m.sum) {
		return fmt.Errorf("%w: seal sum has %d lanes, merge holds %d",
			ErrSealMismatch, len(seal.Sum), len(m.sum))
	}
	if seal.ShardCount == 0 {
		return fmt.Errorf("%w: zero shard count", ErrSealMismatch)
	}
	if m.shardCount != 0 && seal.ShardCount != m.shardCount {
		// A stale seal from before a re-home names the old split; it must
		// be re-exported, not merged.
		return fmt.Errorf("%w: seal splits the round %d ways, merge expects %d",
			ErrSealMismatch, seal.ShardCount, m.shardCount)
	}
	if m.expect != nil && !m.expect[seal.NodeID] {
		return fmt.Errorf("%w: node %d", ErrSealUnknownNode, seal.NodeID)
	}
	if m.absorbed[seal.NodeID] {
		return fmt.Errorf("%w: node %d already merged", ErrSealReplay, seal.NodeID)
	}
	if m.shardCount != 0 && uint32(len(m.absorbed)) >= m.shardCount {
		return ErrMergeComplete
	}

	// Identity: registered key + measurement, or a TOFU pin.
	carried, err := xcrypto.ParseVerifyKey(seal.NodeKey)
	if err != nil {
		return fmt.Errorf("%w: unparseable node key: %v", ErrSealIdentity, err)
	}
	var meas tee.Measurement
	copy(meas[:], seal.Measurement)
	verify := carried
	if reg, ok := m.cfg.Nodes[seal.NodeID]; ok {
		if reg.Verify != nil {
			if carried.Fingerprint() != reg.Verify.Fingerprint() {
				return fmt.Errorf("%w: node %d key does not match registration", ErrSealIdentity, seal.NodeID)
			}
			verify = reg.Verify
		}
		if meas != reg.Measurement {
			return fmt.Errorf("%w: node %d measurement does not match registration", ErrSealIdentity, seal.NodeID)
		}
	} else if pin, ok := m.pins.get(seal.NodeID); ok {
		if carried.Fingerprint() != pin.key || meas != pin.measurement {
			return fmt.Errorf("%w: node %d contradicts its first-use pin", ErrSealIdentity, seal.NodeID)
		}
	} else if !m.cfg.AllowTOFU {
		return fmt.Errorf("%w: node %d has no registered identity", ErrSealIdentity, seal.NodeID)
	}

	if !verify.Verify(seal.SignedBytes(), seal.Signature) {
		return fmt.Errorf("%w: node %d", ErrSealSignature, seal.NodeID)
	}

	// Disjoint coverage: every digest must be new to the merge. Checked
	// in full before commit so an overlapping seal changes nothing.
	for i := 0; i < seal.DigestCount(); i++ {
		if owner, dup := m.seen[seal.DigestAt(i)]; dup {
			return fmt.Errorf("%w: node %d re-claims a contribution node %d covers",
				ErrSealOverlap, seal.NodeID, owner)
		}
	}
	return nil
}

// Complete reports whether every expected partial has been absorbed.
func (m *Merge) Complete() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shardCount != 0 && uint32(len(m.absorbed)) >= m.shardCount
}

// Sum returns the merged sum so far (the round's exact blinded sum once
// Complete). The returned vector is a copy.
func (m *Merge) Sum() fixed.Vector {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sum == nil {
		return nil
	}
	return m.sum.Clone()
}

// Result snapshots the merge as a wire.MergeResult.
func (m *Merge) Result() wire.MergeResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := wire.MergeResult{
		Service:  m.cfg.ServiceName,
		Round:    m.cfg.Round,
		Expect:   m.shardCount,
		Merged:   uint32(len(m.absorbed)),
		Count:    m.count,
		Rejected: m.rejected,
		Refused:  m.refused,
	}
	if m.sum != nil {
		r.Sum = glimmer.VectorToBits(m.sum)
	}
	return r
}

// MergeHub runs merges for many (service, round) pairs — the coordinator
// process's top-level state. Merges are created on first contact in
// dynamic mode (TOFU unless the hub carries registered identities), which
// is what a coordinator that doesn't know the fleet's tenant list ahead
// of time needs.
type MergeHub struct {
	// Nodes and AllowTOFU seed every merge's identity expectations.
	Nodes     map[uint32]MergeNode
	AllowTOFU bool

	pins   NodePins // shared across every merge: pins span rounds
	mu     sync.Mutex
	merges map[mergeKey]*Merge
}

type mergeKey struct {
	service string
	round   uint64
}

// Lookup returns the merge for (service, round) if one exists.
func (h *MergeHub) Lookup(service string, round uint64) (*Merge, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.merges[mergeKey{service, round}]
	return m, ok
}

// Merges returns every live merge keyed by service name and round.
func (h *MergeHub) Merges() map[string][]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]uint64, len(h.merges))
	for k := range h.merges {
		out[k.service] = append(out[k.service], k.round)
	}
	return out
}

// MergePartialSeal absorbs one encoded seal into the matching merge
// (created on first contact) and returns the merge's encoded
// wire.MergeResult — the fleet-merge reply body. On refusal the error is
// returned and the merge (with its bumped refusal counter) is unchanged;
// the caller must not retain seal past the call.
func (h *MergeHub) MergePartialSeal(seal []byte) ([]byte, error) {
	dec, err := wire.DecodePartialSeal(seal)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if h.merges == nil {
		h.merges = make(map[mergeKey]*Merge)
	}
	key := mergeKey{dec.Service, dec.Round}
	m, ok := h.merges[key]
	if !ok {
		m = NewMerge(MergeConfig{
			ServiceName: dec.Service,
			Round:       dec.Round,
			Nodes:       h.Nodes,
			AllowTOFU:   h.AllowTOFU,
			Pins:        &h.pins,
		})
		h.merges[key] = m
	}
	h.mu.Unlock()
	if err := m.absorbSeal(dec); err != nil {
		return nil, err
	}
	return wire.EncodeMergeResult(m.Result()), nil
}
