package service

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

func newNodeSeal(t *testing.T, id, shards uint32) NodeSeal {
	t.Helper()
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	return NodeSeal{
		NodeID:      id,
		ShardCount:  shards,
		Measurement: tee.Measurement{0x50, byte(id)},
		Key:         key,
	}
}

func (n NodeSeal) mergeNode() MergeNode {
	return MergeNode{Verify: n.Key.Public(), Measurement: n.Measurement}
}

// partialPipeline builds a pipeline for one shard of a split round and
// feeds it the given contributions.
func partialPipeline(t *testing.T, key *xcrypto.SigningKey, name string, round uint64, dim int, raws [][]byte) *Pipeline {
	t.Helper()
	p := NewPipeline(PipelineConfig{
		ServiceName: name, Verify: key.Public(), Dim: dim, Round: round,
		Workers: 1, Shards: 2,
	})
	p.Vet(tee.Measurement{1, 2, 3})
	for _, raw := range raws {
		if err := p.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPartialSealExport(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	raws := make([][]byte, 5)
	for i := range raws {
		raws[i] = signedVector(t, key, "svc", 3, randomVector(rng, 4))
	}
	p := partialPipeline(t, key, "svc", 3, 4, raws)
	node := newNodeSeal(t, 2, 3)

	raw, err := p.PartialSeal(node)
	if err != nil {
		t.Fatal(err)
	}
	seal, err := wire.DecodePartialSeal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if seal.Service != "svc" || seal.Round != 3 || seal.NodeID != 2 || seal.ShardCount != 3 {
		t.Fatalf("seal header = %q/%d node %d shards %d", seal.Service, seal.Round, seal.NodeID, seal.ShardCount)
	}
	if seal.Count != 5 || seal.DigestCount() != 5 {
		t.Fatalf("seal covers count=%d digests=%d", seal.Count, seal.DigestCount())
	}
	if want := glimmer.VectorToBits(p.Sum()); !equalLanes(seal.Sum, want) {
		t.Fatalf("seal sum %v != pipeline sum %v", seal.Sum, want)
	}
	if !node.Key.Public().Verify(seal.SignedBytes(), seal.Signature) {
		t.Fatal("seal signature does not verify")
	}
	// Export must be deterministic: a second export signs the same bytes.
	raw2, err := p.PartialSeal(node)
	if err != nil {
		t.Fatal(err)
	}
	seal2, err := wire.DecodePartialSeal(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seal.SignedBytes(), seal2.SignedBytes()) {
		t.Fatal("re-export changed the signed bytes")
	}

	if _, err := p.PartialSeal(NodeSeal{NodeID: 1, ShardCount: 1}); err == nil {
		t.Fatal("exported a seal without a signing key")
	}

	m := NewRoundManager(PipelineConfig{ServiceName: "svc", Verify: key.Public(), Dim: 4})
	if _, err := m.ExportPartialSeal(99, node); err == nil {
		t.Fatal("exported a seal for a round the manager never opened")
	}
}

func equalLanes(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeSplitProperty is the merge algebra property test: for every
// dimension that exercises the 4-wide unroll remainders in fixed and for
// cohorts of ring-wraparound values, ANY N-way split of the cohort —
// merged in any order — produces the byte-identical sum, count, and
// digest coverage of a single node ingesting the whole cohort.
func TestMergeSplitProperty(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, dim := range []int{1, 3, 4, 5, 8, 9, 16} {
		for _, ways := range []int{1, 2, 3, 5} {
			t.Run(fmt.Sprintf("dim%d_split%d", dim, ways), func(t *testing.T) {
				const cohort = 10
				round := uint64(40 + ways)
				raws := make([][]byte, cohort)
				for i := range raws {
					v := randomVector(rng, dim)
					// Force wraparound arithmetic: half the cohort sits at the
					// top of the ring so partial sums overflow uint64 lanes.
					if i%2 == 0 {
						for j := range v {
							v[j] = fixed.Ring(^uint64(0) - uint64(rng.Intn(3)))
						}
					}
					raws[i] = signedVector(t, key, "svc", round, v)
				}

				// Reference: one node ingests everything.
				single := partialPipeline(t, key, "svc", round, dim, raws)
				if err := single.Seal(); err != nil {
					t.Fatal(err)
				}
				wantSum := glimmer.VectorToBits(single.Sum())
				wantState := single.exportRound()

				// Random N-way partition (every shard non-empty not required —
				// empty partials are legal).
				parts := make([][][]byte, ways)
				for _, raw := range raws {
					w := rng.Intn(ways)
					parts[w] = append(parts[w], raw)
				}
				nodes := make([]NodeSeal, ways)
				seals := make([][]byte, ways)
				cfg := MergeConfig{ServiceName: "svc", Dim: dim, Round: round, Nodes: map[uint32]MergeNode{}}
				for w := range parts {
					nodes[w] = newNodeSeal(t, uint32(w), uint32(ways))
					cfg.Expect = append(cfg.Expect, uint32(w))
					cfg.Nodes[uint32(w)] = nodes[w].mergeNode()
					p := partialPipeline(t, key, "svc", round, dim, parts[w])
					seals[w], err = p.PartialSeal(nodes[w])
					if err != nil {
						t.Fatal(err)
					}
				}

				// Absorb in a random order: the merge must be commutative.
				merge := NewMerge(cfg)
				for _, w := range rng.Perm(ways) {
					if err := merge.Absorb(seals[w]); err != nil {
						t.Fatal(err)
					}
				}
				if !merge.Complete() {
					t.Fatal("merge not complete after every partial")
				}
				res := merge.Result()
				if !equalLanes(res.Sum, wantSum) {
					t.Fatalf("merged sum %v != single-node sum %v", res.Sum, wantSum)
				}
				if res.Count != wantState.Count {
					t.Fatalf("merged count %d != single-node count %d", res.Count, wantState.Count)
				}
				if got := wire.EncodeMergeResult(res); !bytes.Equal(got, wire.EncodeMergeResult(merge.Result())) {
					t.Fatal("merge result encoding unstable")
				}
				// Digest coverage must be the union: every digest the single
				// node saw is claimed by exactly one partial.
				covered := 0
				for _, raw := range seals {
					s, err := wire.DecodePartialSeal(raw)
					if err != nil {
						t.Fatal(err)
					}
					covered += s.DigestCount()
				}
				if covered != len(wantState.Digests) {
					t.Fatalf("partials cover %d digests, single node saw %d", covered, len(wantState.Digests))
				}
			})
		}
	}
}

// TestMergeRefusals drives every refusal path and demands each one leave
// the merge untouched.
func TestMergeRefusals(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const dim, round = 4, uint64(8)
	mkRaws := func(n int) [][]byte {
		raws := make([][]byte, n)
		for i := range raws {
			raws[i] = signedVector(t, key, "svc", round, randomVector(rng, dim))
		}
		return raws
	}
	nodeA := newNodeSeal(t, 1, 2)
	nodeB := newNodeSeal(t, 2, 2)
	rawsA, rawsB := mkRaws(3), mkRaws(3)
	sealA, err := partialPipeline(t, key, "svc", round, dim, rawsA).PartialSeal(nodeA)
	if err != nil {
		t.Fatal(err)
	}
	sealB, err := partialPipeline(t, key, "svc", round, dim, rawsB).PartialSeal(nodeB)
	if err != nil {
		t.Fatal(err)
	}

	newMerge := func() *Merge {
		return NewMerge(MergeConfig{
			ServiceName: "svc", Dim: dim, Round: round,
			Expect: []uint32{1, 2},
			Nodes:  map[uint32]MergeNode{1: nodeA.mergeNode(), 2: nodeB.mergeNode()},
		})
	}

	check := func(t *testing.T, m *Merge, raw []byte, want error) {
		t.Helper()
		before := m.Result()
		err := m.Absorb(raw)
		if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
		after := m.Result()
		before.Refused, after.Refused = 0, 0
		if !bytes.Equal(wire.EncodeMergeResult(before), wire.EncodeMergeResult(after)) {
			t.Fatalf("refusal disturbed the merge:\nbefore %+v\nafter  %+v", before, after)
		}
	}

	t.Run("garbage", func(t *testing.T) {
		check(t, newMerge(), []byte{0xFF, 0xFF}, wire.ErrPartialSeal)
	})

	t.Run("wrong-round", func(t *testing.T) {
		other, err := partialPipeline(t, key, "svc", round+1, dim, nil).PartialSeal(nodeA)
		if err != nil {
			t.Fatal(err)
		}
		check(t, newMerge(), other, ErrSealMismatch)
	})

	t.Run("stale-shard-count", func(t *testing.T) {
		stale, err := partialPipeline(t, key, "svc", round, dim, rawsA).PartialSeal(
			NodeSeal{NodeID: 1, ShardCount: 3, Measurement: nodeA.Measurement, Key: nodeA.Key})
		if err != nil {
			t.Fatal(err)
		}
		m := newMerge()
		if err := m.Absorb(sealB); err != nil {
			t.Fatal(err)
		}
		check(t, m, stale, ErrSealMismatch)
	})

	t.Run("unknown-node", func(t *testing.T) {
		intruder, err := partialPipeline(t, key, "svc", round, dim, nil).PartialSeal(newNodeSeal(t, 9, 2))
		if err != nil {
			t.Fatal(err)
		}
		check(t, newMerge(), intruder, ErrSealUnknownNode)
	})

	t.Run("replay", func(t *testing.T) {
		m := newMerge()
		if err := m.Absorb(sealA); err != nil {
			t.Fatal(err)
		}
		check(t, m, sealA, ErrSealReplay)
	})

	t.Run("forged-key", func(t *testing.T) {
		// Node 2's ID under a key the coordinator never registered: the
		// forger can sign whatever partial it likes, the registration check
		// refuses it before the sum is touched.
		forger := newNodeSeal(t, 2, 2)
		forged, err := partialPipeline(t, key, "svc", round, dim, mkRaws(2)).PartialSeal(forger)
		if err != nil {
			t.Fatal(err)
		}
		check(t, newMerge(), forged, ErrSealIdentity)
	})

	t.Run("wrong-measurement", func(t *testing.T) {
		swapped := NodeSeal{NodeID: 1, ShardCount: 2, Measurement: tee.Measurement{0xEE}, Key: nodeA.Key}
		seal, err := partialPipeline(t, key, "svc", round, dim, nil).PartialSeal(swapped)
		if err != nil {
			t.Fatal(err)
		}
		check(t, newMerge(), seal, ErrSealIdentity)
	})

	t.Run("flipped-signature", func(t *testing.T) {
		dec, err := wire.DecodePartialSeal(sealA)
		if err != nil {
			t.Fatal(err)
		}
		dec.Signature = append([]byte(nil), dec.Signature...)
		dec.Signature[0] ^= 0x80
		check(t, newMerge(), wire.EncodePartialSeal(dec), ErrSealSignature)
	})

	t.Run("tampered-sum", func(t *testing.T) {
		// Inflating the partial sum breaks the signature: the sum is inside
		// the signed preimage.
		dec, err := wire.DecodePartialSeal(sealA)
		if err != nil {
			t.Fatal(err)
		}
		dec.Sum = append([]uint64(nil), dec.Sum...)
		dec.Sum[0]++
		check(t, newMerge(), wire.EncodePartialSeal(dec), ErrSealSignature)
	})

	t.Run("overlap", func(t *testing.T) {
		// Node 2 signs a perfectly valid seal that claims one of node 1's
		// contributions — double counting. The disjointness check refuses
		// it even though the signature verifies.
		overlapping, err := partialPipeline(t, key, "svc", round, dim,
			append(append([][]byte(nil), rawsB...), rawsA[0])).PartialSeal(nodeB)
		if err != nil {
			t.Fatal(err)
		}
		m := newMerge()
		if err := m.Absorb(sealA); err != nil {
			t.Fatal(err)
		}
		check(t, m, overlapping, ErrSealOverlap)
		// The honest disjoint seal still completes the merge afterwards.
		if err := m.Absorb(sealB); err != nil {
			t.Fatal(err)
		}
		if !m.Complete() {
			t.Fatal("merge did not complete after refusing the overlap")
		}
	})

	t.Run("refused-counter", func(t *testing.T) {
		m := newMerge()
		_ = m.Absorb([]byte{0x01})
		_ = m.Absorb(sealA)
		_ = m.Absorb(sealA)
		if got := m.Result().Refused; got != 2 {
			t.Fatalf("refused counter = %d, want 2", got)
		}
	})
}

// TestMergeHubTOFU drives the dynamic coordinator: merges materialize on
// first contact, node identities pin on first use, and a node that comes
// back under a different key is refused.
func TestMergeHubTOFU(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const dim, round = 3, uint64(2)
	nodeA, nodeB := newNodeSeal(t, 1, 2), newNodeSeal(t, 2, 2)
	rawsA := [][]byte{signedVector(t, key, "svc", round, randomVector(rng, dim))}
	rawsB := [][]byte{signedVector(t, key, "svc", round, randomVector(rng, dim))}
	sealA, err := partialPipeline(t, key, "svc", round, dim, rawsA).PartialSeal(nodeA)
	if err != nil {
		t.Fatal(err)
	}
	sealB, err := partialPipeline(t, key, "svc", round, dim, rawsB).PartialSeal(nodeB)
	if err != nil {
		t.Fatal(err)
	}

	hub := &MergeHub{AllowTOFU: true}
	reply, err := hub.MergePartialSeal(sealA)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wire.DecodeMergeResult(reply)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 || res.Expect != 2 {
		t.Fatalf("after first seal: merged=%d expect=%d", res.Merged, res.Expect)
	}

	// Pins span rounds: an impostor re-using node 1's ID under a different
	// key in the NEXT round contradicts the pin taken in this one.
	impostor, err := partialPipeline(t, key, "svc", round+1, dim, nil).PartialSeal(
		NodeSeal{NodeID: 1, ShardCount: 2, Measurement: nodeA.Measurement, Key: nodeB.Key})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.MergePartialSeal(impostor); !errors.Is(err, ErrSealIdentity) {
		t.Fatalf("impostor got %v, want %v", err, ErrSealIdentity)
	}

	reply, err = hub.MergePartialSeal(sealB)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = wire.DecodeMergeResult(reply); err != nil {
		t.Fatal(err)
	}
	if res.Merged != 2 || res.Expect != 2 {
		t.Fatalf("after second seal: merged=%d expect=%d", res.Merged, res.Expect)
	}
	m, ok := hub.Lookup("svc", round)
	if !ok || !m.Complete() {
		t.Fatal("hub merge not complete")
	}
	// A third node with the completed round's shard count cannot join.
	late, err := partialPipeline(t, key, "svc", round, dim, nil).PartialSeal(newNodeSeal(t, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.MergePartialSeal(late); !errors.Is(err, ErrMergeComplete) {
		t.Fatalf("late seal got %v, want %v", err, ErrMergeComplete)
	}
	// Two merges live: round 2 (complete) and round 3 (materialized on the
	// impostor's first contact, then refused — zero partials).
	if merges := hub.Merges(); len(merges["svc"]) != 2 {
		t.Fatalf("hub merges = %v", merges)
	}
	if m, ok := hub.Lookup("svc", round+1); !ok || m.Complete() || m.Result().Merged != 0 {
		t.Fatal("impostor's refused seal disturbed the next round's merge")
	}
}
