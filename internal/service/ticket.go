package service

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// The service half of attested session tickets: a bounded per-tenant table
// mapping ticket IDs to HMAC session keys, filled by Grant (one ECDSA
// verification per session — the amortized cost) and consulted by the
// ingest hot path (a lock-brief map read plus a constant-time MAC check per
// contribution — the ~100× cheaper steady state).

// Ticket policy errors surfaced by granting and by ticketed ingest.
var (
	// ErrTicketsDisabled is returned by Grant when the tenant has no ticket
	// policy configured.
	ErrTicketsDisabled = errors.New("service: session tickets not enabled")
	// ErrUnknownTicket is returned when a contribution names a ticket the
	// table does not hold (never granted, evicted, or another tenant's).
	ErrUnknownTicket = errors.New("service: unknown session ticket")
	// ErrTicketExpired is returned once a ticket's expiry has passed; the
	// client re-runs the grant exchange to renew.
	ErrTicketExpired = errors.New("service: session ticket expired")
	// ErrTicketWindow is returned when a contribution names a round outside
	// the ticket's granted window — the binding that bounds what a stolen
	// session key can replay or pre-sign.
	ErrTicketWindow = errors.New("service: round outside ticket window")
	// ErrBadMAC is returned when the session MAC does not verify.
	ErrBadMAC = errors.New("service: contribution MAC invalid")
)

// Ticket-table sizing defaults.
const (
	// DefaultMaxTickets bounds one tenant's live ticket table.
	DefaultMaxTickets = 4096
	// DefaultTicketTTL is the grant lifetime in seconds.
	DefaultTicketTTL = 3600
	// DefaultMaxTicketWindow caps the round span one grant may cover.
	DefaultMaxTicketWindow = 1024
)

// TicketConfig is a tenant's ticket policy.
type TicketConfig struct {
	// MaxTickets bounds the table (<= 0 means DefaultMaxTickets). At the
	// bound, granting evicts the soonest-expiring ticket: the one whose
	// holder must renew soonest anyway.
	MaxTickets int
	// TTL is the grant lifetime in seconds (<= 0 means DefaultTicketTTL).
	TTL int64
	// MaxWindow caps the round span of one grant (<= 0 means
	// DefaultMaxTicketWindow); wider requests are clamped, and the clamped
	// window is what the grant returns.
	MaxWindow uint64
	// Now supplies the clock (Unix seconds); nil means time.Now. Tests and
	// the deterministic simulator inject their own.
	Now func() int64
}

func (c TicketConfig) withDefaults() TicketConfig {
	if c.MaxTickets <= 0 {
		c.MaxTickets = DefaultMaxTickets
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTicketTTL
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = DefaultMaxTicketWindow
	}
	// Cache the clock at construction: the expiry check runs on the
	// ingest hot path, and resolving the nil-vs-injected choice there
	// cost a branch per check.
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().Unix() }
	}
	return c
}

// ticketEntry is one live ticket. Entries are values, so the hot path
// copies the 32-byte key out of the table instead of sharing pointers.
type ticketEntry struct {
	key                   xcrypto.SessionKey
	roundFirst, roundLast uint64
	expiresUnix           int64
}

// TicketTable holds one tenant's live session tickets. All methods are
// safe for concurrent use; check is the only one on the hot path.
type TicketTable struct {
	cfg TicketConfig

	mu      sync.RWMutex
	entries map[uint64]ticketEntry

	// tenant/journal route grant and evict events to the durable journal
	// (see state.go); set via Registry.SetJournal before traffic.
	tenant  string
	journal Journal
}

// NewTicketTable creates a table under the given policy.
func NewTicketTable(cfg TicketConfig) *TicketTable {
	return &TicketTable{cfg: cfg.withDefaults(), entries: make(map[uint64]ticketEntry)}
}

// now reads the clock. withDefaults installed a concrete func either way,
// so the expiry check on the ingest hot path pays one indirect call, not
// a nil test plus time.Now's interface machinery.
func (t *TicketTable) now() int64 { return t.cfg.Now() }

// Len reports the live ticket count.
func (t *TicketTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Install registers a ticket directly — the deployment hook for keys
// established out of band (and the benchmarks' way to fill a table without
// the DH exchange). Grant is the protocol path.
func (t *TicketTable) Install(id uint64, key xcrypto.SessionKey, roundFirst, roundLast uint64, expiresUnix int64) {
	e := ticketEntry{key: key, roundFirst: roundFirst, roundLast: roundLast, expiresUnix: expiresUnix}
	t.mu.Lock()
	evicted := t.insertLocked(id, e)
	j, tenant := t.journal, t.tenant
	t.mu.Unlock()
	t.journalInsert(j, tenant, evicted, id, e)
}

// journalInsert appends the evict and grant records of one insert,
// outside the table lock.
func (t *TicketTable) journalInsert(j Journal, tenant string, evicted []uint64, id uint64, e ticketEntry) {
	if j == nil {
		return
	}
	for _, v := range evicted {
		j.TicketEvicted(tenant, v)
	}
	j.TicketGranted(tenant, TicketState{
		ID: id, Key: e.key,
		RoundFirst: e.roundFirst, RoundLast: e.roundLast,
		ExpiresUnix: e.expiresUnix,
	})
}

// insertLocked adds an entry, enforcing the bound: expired tickets are
// dropped first, then the soonest-expiring live ticket is evicted (lowest
// ID on ties, so eviction is deterministic). It returns the removed IDs
// so the caller can journal them — replay re-applies recorded removals
// instead of re-running this policy, which keeps replay clock-independent.
func (t *TicketTable) insertLocked(id uint64, e ticketEntry) (evicted []uint64) {
	if len(t.entries) >= t.cfg.MaxTickets {
		now := t.now()
		for k, v := range t.entries {
			if now > v.expiresUnix {
				delete(t.entries, k)
				if t.journal != nil {
					evicted = append(evicted, k)
				}
			}
		}
	}
	for len(t.entries) >= t.cfg.MaxTickets {
		var victim uint64
		var victimExp int64
		found := false
		for k, v := range t.entries {
			if !found || v.expiresUnix < victimExp || (v.expiresUnix == victimExp && k < victim) {
				victim, victimExp, found = k, v.expiresUnix, true
			}
		}
		delete(t.entries, victim)
		if t.journal != nil {
			evicted = append(evicted, victim)
		}
	}
	t.entries[id] = e
	return evicted
}

// check is the ingest hot path: resolve the ticket and enforce expiry and
// the round window, returning the session key by value. Zero allocations.
func (t *TicketTable) check(id, round uint64) (xcrypto.SessionKey, error) {
	t.mu.RLock()
	e, ok := t.entries[id]
	t.mu.RUnlock()
	if !ok {
		return xcrypto.SessionKey{}, ErrUnknownTicket
	}
	if t.now() > e.expiresUnix {
		return xcrypto.SessionKey{}, ErrTicketExpired
	}
	if round < e.roundFirst || round > e.roundLast {
		return xcrypto.SessionKey{}, ErrTicketWindow
	}
	return e.key, nil
}

// Grant runs the service side of the ticket exchange on an already-decoded
// request: verify its ECDSA signature (the session's one asymmetric check;
// skipped when verify is nil, the pre-authenticated mode), apply the
// measurement allowlist, clamp the window, complete the X25519 exchange,
// register the derived session key, and return the encoded grant. The
// grant carries no secret — only the two DH ends can derive the key.
func (t *TicketTable) Grant(serviceName string, verify *xcrypto.VerifyKey,
	vetted func(tee.Measurement) bool, req wire.TicketRequest) ([]byte, error) {
	if req.Service != serviceName {
		return nil, ErrWrongService
	}
	if verify != nil && !verify.Verify(req.SignedBytes(), req.Signature) {
		return nil, ErrBadSignature
	}
	var meas tee.Measurement
	copy(meas[:], req.Measurement)
	if !vetted(meas) {
		return nil, ErrUnknownGlimmer
	}
	if req.RoundLast < req.RoundFirst {
		return nil, fmt.Errorf("service: ticket window [%d, %d] is inverted", req.RoundFirst, req.RoundLast)
	}
	first, last := req.RoundFirst, req.RoundLast
	if span := last - first; span > t.cfg.MaxWindow {
		last = first + t.cfg.MaxWindow
	}
	eph, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, fmt.Errorf("service: ticket DH key: %w", err)
	}
	shared, err := eph.Shared(req.DevicePub)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	id, err := t.mintID()
	if err != nil {
		return nil, err
	}
	expires := t.now() + t.cfg.TTL
	e := ticketEntry{
		key:         xcrypto.DeriveTicketKey(shared, serviceName, id),
		roundFirst:  first,
		roundLast:   last,
		expiresUnix: expires,
	}
	t.mu.Lock()
	evicted := t.insertLocked(id, e)
	j, tenant := t.journal, t.tenant
	t.mu.Unlock()
	t.journalInsert(j, tenant, evicted, id, e)
	return wire.EncodeTicketGrant(wire.TicketGrant{
		Service:     serviceName,
		ID:          id,
		ServerPub:   eph.PublicBytes(),
		RoundFirst:  first,
		RoundLast:   last,
		ExpiresUnix: uint64(expires),
	}), nil
}

// mintID draws a fresh random ticket ID not currently in the table.
func (t *TicketTable) mintID() (uint64, error) {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("service: ticket ID generation: %w", err)
		}
		id := binary.BigEndian.Uint64(b[:])
		t.mu.RLock()
		_, taken := t.entries[id]
		t.mu.RUnlock()
		if !taken {
			return id, nil
		}
	}
}
