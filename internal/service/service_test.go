package service

import (
	"errors"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

func TestNewValidation(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("", key.Public()); err == nil {
		t.Fatal("empty service name accepted")
	}
}

func TestSetPredicateRejectsUnverifiable(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New("svc", key.Public())
	if err != nil {
		t.Fatal(err)
	}
	leak := &predicate.Program{Name: "leak", Code: []predicate.Instr{
		{Op: predicate.OpLoadP, Arg: 0}, {Op: predicate.OpVerdict},
	}}
	if err := svc.SetPredicate(leak); err == nil {
		t.Fatal("unverifiable predicate accepted by service")
	}
	if _, err := svc.BasePayload(); err == nil {
		t.Fatal("BasePayload without a predicate should fail")
	}
}

// serialPipeline is the strictly serial pipeline (one worker, one shard)
// the policy tests exercise — the configuration the old Aggregator facade
// provided.
func serialPipeline(name string, verify *xcrypto.VerifyKey, dim int, round uint64) *Pipeline {
	return NewPipeline(PipelineConfig{
		ServiceName: name,
		Verify:      verify,
		Dim:         dim,
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
}

// signedContribution fabricates a contribution signed by key.
func signedContribution(t *testing.T, key *xcrypto.SigningKey, name string, round uint64, dim int) glimmer.SignedContribution {
	t.Helper()
	sc := glimmer.SignedContribution{
		ServiceName: name,
		Round:       round,
		Measurement: tee.Measurement{1, 2, 3},
		Blinded:     fixed.NewVector(dim),
	}
	sig, err := key.Sign(sc.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	sc.Signature = sig
	return sc
}

func TestAggregatorPolicyChecks(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	const dim, round = 4, uint64(2)
	agg := serialPipeline("svc", key.Public(), dim, round)
	agg.Vet(tee.Measurement{1, 2, 3})

	good := signedContribution(t, key, "svc", round, dim)
	if err := agg.Add(glimmer.EncodeSignedContribution(good)); err != nil {
		t.Fatalf("valid contribution refused: %v", err)
	}

	cases := []struct {
		name string
		mk   func() glimmer.SignedContribution
		want error
	}{
		{"wrong service", func() glimmer.SignedContribution {
			return signedContribution(t, key, "other", round, dim)
		}, ErrWrongService},
		{"wrong round", func() glimmer.SignedContribution {
			return signedContribution(t, key, "svc", round+1, dim)
		}, ErrWrongRound},
		{"wrong dim", func() glimmer.SignedContribution {
			return signedContribution(t, key, "svc", round, dim+1)
		}, ErrWrongDim},
		{"unvetted measurement", func() glimmer.SignedContribution {
			sc := signedContribution(t, key, "svc", round, dim)
			sc.Measurement = tee.Measurement{9}
			sig, err := key.Sign(sc.SignedBytes())
			if err != nil {
				t.Fatal(err)
			}
			sc.Signature = sig
			return sc
		}, ErrUnknownGlimmer},
		{"forged signature", func() glimmer.SignedContribution {
			sc := signedContribution(t, key, "svc", round, dim)
			sc.Blinded[0] = 99
			return sc
		}, ErrBadSignature},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := agg.Add(glimmer.EncodeSignedContribution(c.mk())); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
	if agg.Count() != 1 {
		t.Fatalf("count = %d, want 1", agg.Count())
	}
	if agg.Rejected() != len(cases) {
		t.Fatalf("rejected = %d, want %d", agg.Rejected(), len(cases))
	}
	if _, err := agg.Mean(); err != nil {
		t.Fatalf("mean: %v", err)
	}
}

func TestAggregatorGarbageAndEmptyMean(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	agg := serialPipeline("svc", key.Public(), 4, 1)
	if err := agg.Add([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := agg.Mean(); err == nil {
		t.Fatal("mean of nothing accepted")
	}
	if err := agg.CorrectDropout(fixed.NewVector(3)); !errors.Is(err, ErrWrongDim) {
		t.Fatalf("dropout dim err = %v", err)
	}
}

func TestAggregatorWithoutAllowlistAcceptsAnyMeasurement(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	agg := serialPipeline("svc", key.Public(), 4, 1)
	sc := signedContribution(t, key, "svc", 1, 4)
	if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
		t.Fatalf("no-allowlist aggregator refused contribution: %v", err)
	}
}

func TestBotGateChallengeLifecycle(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	gate := NewBotGate("svc", key.Public())
	challenge, err := gate.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	v := glimmer.Verdict{ServiceName: "svc", Challenge: challenge, Human: true}
	sig, err := key.Sign(v.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	v.Signature = sig
	human, err := gate.CheckVerdict(glimmer.EncodeVerdict(v))
	if err != nil || !human {
		t.Fatalf("CheckVerdict = (%v, %v)", human, err)
	}
	// Unknown challenge.
	v2 := v
	v2.Challenge = []byte("never issued")
	sig2, err := key.Sign(v2.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	v2.Signature = sig2
	if _, err := gate.CheckVerdict(glimmer.EncodeVerdict(v2)); !errors.Is(err, ErrUnknownChallenge) {
		t.Fatalf("err = %v, want ErrUnknownChallenge", err)
	}
}

func TestBotGateRejectsWrongKeyAndGarbage(t *testing.T) {
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	gate := NewBotGate("svc", key.Public())
	challenge, err := gate.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	v := glimmer.Verdict{ServiceName: "svc", Challenge: challenge, Human: false}
	sig, err := wrong.Sign(v.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	v.Signature = sig
	if _, err := gate.CheckVerdict(glimmer.EncodeVerdict(v)); !errors.Is(err, ErrVerdictSignature) {
		t.Fatalf("err = %v, want ErrVerdictSignature", err)
	}
	if _, err := gate.CheckVerdict([]byte("garbage")); err == nil {
		t.Fatal("garbage verdict accepted")
	}
}
