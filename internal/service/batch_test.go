package service

import (
	"errors"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/race"
	"glimmers/internal/xcrypto"
)

// faultBatch builds a batch mixing every refusal the ticketed path can
// produce with valid traffic under two tickets, plus raw garbage. The
// returned batch is the equivalence corpus: the batch plan must land every
// item exactly where the per-item path does.
func faultBatch(dim int, round uint64, good, narrow testTicket) [][]byte {
	ghost := testTicket{id: 9999, key: xcrypto.SessionKey{0xEE}, first: 1, last: 100}
	forged := append([]byte(nil), ticketedRaw("batch.example", round, dim, 2, good)...)
	forged[len(forged)-1] ^= 0xFF // flip a MAC byte
	dup := ticketedRaw("batch.example", round, dim, 3, good)
	return [][]byte{
		ticketedRaw("batch.example", round, dim, 1, good), // accept
		forged,                      // ErrBadMAC
		dup,                         // accept
		append([]byte(nil), dup...), // ErrDuplicate
		ticketedRaw("other.example", round, dim, 4, good),   // ErrWrongService
		ticketedRaw("batch.example", round+1, dim, 5, good), // ErrWrongRound
		ticketedRaw("batch.example", round, dim+2, 6, good), // ErrWrongDim
		ticketedRaw("batch.example", round, dim, 7, ghost),  // ErrUnknownTicket
		ticketedRaw("batch.example", round, dim, 8, narrow), // ErrTicketWindow
		{0xFF, 0xFF, 0xFF, 0xFF},                            // decode error
		ticketedRaw("batch.example", round, dim, 9, good),   // accept
		ticketedRaw("batch.example", round, dim, 1, good),   // ErrDuplicate of [0]
	}
}

func batchPipeline(dim int, round uint64, workers int, tbl *TicketTable) *Pipeline {
	return NewPipeline(PipelineConfig{
		ServiceName:    "batch.example",
		Dim:            dim,
		Round:          round,
		Tickets:        tbl,
		Workers:        workers,
		ExpectedCohort: 4096,
	})
}

// TestAddBatchMatchesPerItem is the batch plan's core contract: identical
// accept/reject verdicts, error values, rejected counter, and sum as the
// per-item path, across the full fault mix.
func TestAddBatchMatchesPerItem(t *testing.T) {
	const dim, round = 16, uint64(5)
	tbl := NewTicketTable(TicketConfig{})
	good := testTicket{id: 7, key: xcrypto.SessionKey{0xA7}, first: 1, last: 1 << 32}
	narrow := testTicket{id: 8, key: xcrypto.SessionKey{0xB8}, first: 1, last: 2}
	tbl.Install(good.id, good.key, good.first, good.last, 1<<62)
	tbl.Install(narrow.id, narrow.key, narrow.first, narrow.last, 1<<62)
	batch := faultBatch(dim, round, good, narrow)

	ref := batchPipeline(dim, round, 1, tbl)
	refErrs := make([]error, len(batch))
	for i, raw := range batch {
		refErrs[i] = ref.Add(raw)
	}

	got := batchPipeline(dim, round, 1, tbl)
	gotErrs := got.AddBatch(batch)
	for i := range batch {
		switch {
		case (refErrs[i] == nil) != (gotErrs[i] == nil):
			t.Errorf("item %d: per-item err %v, batch err %v", i, refErrs[i], gotErrs[i])
		case refErrs[i] != nil && refErrs[i].Error() != gotErrs[i].Error():
			t.Errorf("item %d: per-item err %q, batch err %q", i, refErrs[i], gotErrs[i])
		}
	}
	if ref.Count() != got.Count() || ref.Rejected() != got.Rejected() {
		t.Errorf("tallies diverge: per-item (%d, %d), batch (%d, %d)",
			ref.Count(), ref.Rejected(), got.Count(), got.Rejected())
	}
	if ref.Sum().Digest() != got.Sum().Digest() {
		t.Error("sums diverge between per-item and batch paths")
	}
	ref.Close()
	got.Close()
}

// TestAddBatchMatchesPerItemAcrossWorkers extends the equivalence to the
// chunked worker fan-out. Chunk boundaries make duplicate attribution
// racy (one of the pair wins, as with any concurrent ingest), so the
// per-index comparison gives way to order-independent invariants: the
// tallies, the sum, and the multiset of error kinds.
func TestAddBatchMatchesPerItemAcrossWorkers(t *testing.T) {
	const dim, round = 16, uint64(5)
	tbl := NewTicketTable(TicketConfig{})
	good := testTicket{id: 7, key: xcrypto.SessionKey{0xA7}, first: 1, last: 1 << 32}
	narrow := testTicket{id: 8, key: xcrypto.SessionKey{0xB8}, first: 1, last: 2}
	tbl.Install(good.id, good.key, good.first, good.last, 1<<62)
	tbl.Install(narrow.id, narrow.key, narrow.first, narrow.last, 1<<62)
	batch := faultBatch(dim, round, good, narrow)
	// Pad with enough valid traffic that every worker count actually chunks.
	for i := 0; i < 100; i++ {
		batch = append(batch, ticketedRaw("batch.example", round, dim, 100+i, good))
	}

	ref := batchPipeline(dim, round, 1, tbl)
	for _, raw := range batch {
		_ = ref.Add(raw)
	}
	wantSum := ref.Sum().Digest()
	ref.Close()

	for _, workers := range []int{1, 2, 3, 4} {
		p := batchPipeline(dim, round, workers, tbl)
		errs := p.AddBatch(batch)
		kinds := map[string]int{}
		for _, err := range errs {
			if err != nil {
				kinds[err.Error()]++
			}
		}
		if p.Count() != ref.Count() || p.Rejected() != ref.Rejected() {
			t.Errorf("workers=%d: tallies (%d, %d), want (%d, %d)",
				workers, p.Count(), p.Rejected(), ref.Count(), ref.Rejected())
		}
		if got := p.Sum().Digest(); got != wantSum {
			t.Errorf("workers=%d: sum digest %s, want %s", workers, got, wantSum)
		}
		for _, sentinel := range []error{ErrBadMAC, ErrDuplicate, ErrWrongService, ErrWrongRound,
			ErrWrongDim, ErrUnknownTicket, ErrTicketWindow} {
			n := 0
			for _, err := range errs {
				if errors.Is(err, sentinel) {
					n++
				}
			}
			wantN := 0
			if sentinel == ErrDuplicate {
				wantN = 2
			} else {
				wantN = 1
			}
			if n != wantN {
				t.Errorf("workers=%d: %d × %v, want %d", workers, n, sentinel, wantN)
			}
		}
		p.Close()
	}
}

// TestAddBatchLifecycleRefusal checks the whole-batch refusal path fills
// every slot.
func TestAddBatchLifecycleRefusal(t *testing.T) {
	tbl := NewTicketTable(TicketConfig{})
	p := batchPipeline(8, 1, 1, tbl)
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 3)
	errs[1] = errors.New("stale") // reused slices must be overwritten
	p.AddBatchErrs(make([][]byte, 3), errs)
	for i, err := range errs {
		if !errors.Is(err, ErrRoundSealed) {
			t.Errorf("slot %d: %v, want ErrRoundSealed", i, err)
		}
	}
	p.Close()
}

// TestIngestArenaNotAliasedAcrossConcurrentAddBatch is the arena's -race
// guard, mirroring the pooled-scratch guard from the per-item path: many
// concurrent AddBatch callers, one ticket per caller, and the final sum
// must be exact — any arena state bleeding between concurrent batches
// corrupts a lane.
func TestIngestArenaNotAliasedAcrossConcurrentAddBatch(t *testing.T) {
	const (
		dim       = 32
		perCaller = 64
		callers   = 6
		round     = uint64(5)
	)
	tbl := NewTicketTable(TicketConfig{})
	tickets := make([]testTicket, callers)
	for c := range tickets {
		tickets[c] = testTicket{id: uint64(100 + c), key: xcrypto.SessionKey{byte(c + 1)}, first: 1, last: 16}
		tbl.Install(tickets[c].id, tickets[c].key, tickets[c].first, tickets[c].last, 1<<62)
	}
	for _, workers := range []int{1, 4} {
		p := batchPipeline(dim, round, workers, tbl)
		all := make([][][]byte, callers)
		want := fixed.NewVector(dim)
		for c := 0; c < callers; c++ {
			all[c] = make([][]byte, perCaller)
			for i := range all[c] {
				raw := ticketedRaw("batch.example", round, dim, c*perCaller+i, tickets[c])
				tc, err := glimmer.DecodeTicketedContribution(raw)
				if err != nil {
					t.Fatal(err)
				}
				want.AddInPlace(tc.Blinded)
				all[c][i] = raw
			}
		}
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(batch [][]byte) {
				defer wg.Done()
				for _, err := range p.AddBatch(batch) {
					if err != nil {
						t.Errorf("AddBatch: %v", err)
					}
				}
			}(all[c])
		}
		wg.Wait()
		if err := p.Seal(); err != nil {
			t.Fatal(err)
		}
		if p.Count() != callers*perCaller {
			t.Fatalf("workers=%d: count = %d, want %d", workers, p.Count(), callers*perCaller)
		}
		got := p.Sum()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sum[%d] = %v, want %v (arena aliasing?)", workers, i, got[i], want[i])
			}
		}
		p.Close()
	}
}

// TestAddBatchMustNotRetain enforces the frame-buffer contract end to end:
// once AddBatch returns, the caller may reuse (here: trash) every input
// buffer without corrupting the aggregate — nothing in the pipeline, its
// shards, or the pooled arenas may still reference the frames.
func TestAddBatchMustNotRetain(t *testing.T) {
	const dim, round = 16, uint64(3)
	tbl := NewTicketTable(TicketConfig{})
	tk := testTicket{id: 7, key: xcrypto.SessionKey{0xA7}, first: 1, last: 16}
	tbl.Install(tk.id, tk.key, tk.first, tk.last, 1<<62)
	p := batchPipeline(dim, round, 1, tbl)
	defer p.Close()

	first := make([][]byte, 32)
	want := fixed.NewVector(dim)
	for i := range first {
		first[i] = ticketedRaw("batch.example", round, dim, i, tk)
		tc, err := glimmer.DecodeTicketedContribution(first[i])
		if err != nil {
			t.Fatal(err)
		}
		want.AddInPlace(tc.Blinded)
	}
	for _, err := range p.AddBatch(first) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Trash every frame the first batch lived in, then keep ingesting.
	for _, raw := range first {
		for j := range raw {
			raw[j] = 0xDD
		}
	}
	second := make([][]byte, 32)
	for i := range second {
		second[i] = ticketedRaw("batch.example", round, dim, 1000+i, tk)
		tc, err := glimmer.DecodeTicketedContribution(second[i])
		if err != nil {
			t.Fatal(err)
		}
		want.AddInPlace(tc.Blinded)
	}
	for _, err := range p.AddBatch(second) {
		if err != nil {
			t.Fatal(err)
		}
	}
	got := p.Sum()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v, want %v (a frame view was retained)", i, got[i], want[i])
		}
	}
}

// TestAddBatchErrsAllocFree pins the batch plan's zero-allocation contract:
// steady-state batches through a warmed pipeline, with a caller-owned error
// slice, allocate nothing per batch.
func TestAddBatchErrsAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	const dim, round, batchSize, runs = 64, uint64(7), 16, 100
	tbl := NewTicketTable(TicketConfig{})
	tk := testTicket{id: 42, key: xcrypto.SessionKey{1, 2, 3}, first: 1, last: 16}
	tbl.Install(tk.id, tk.key, tk.first, tk.last, 1<<62)
	batches := make([][][]byte, runs+2)
	for b := range batches {
		batches[b] = make([][]byte, batchSize)
		for i := range batches[b] {
			batches[b][i] = ticketedRaw("batch.example", round, dim, b*batchSize+i, tk)
		}
	}
	p := NewPipeline(PipelineConfig{
		ServiceName:    "batch.example",
		Dim:            dim,
		Round:          round,
		Tickets:        tbl,
		Workers:        1,
		ExpectedCohort: len(batches) * batchSize,
	})
	defer p.Close()
	errs := make([]error, batchSize)
	p.AddBatchErrs(batches[0], errs) // warm the arena, MAC snapshots, shards
	b := 0
	if got := testing.AllocsPerRun(runs, func() {
		b++
		p.AddBatchErrs(batches[b], errs)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}); got > 0 {
		t.Errorf("AddBatchErrs: %.2f allocs/op, want 0", got)
	}
	if p.Count() != (b+1)*batchSize {
		t.Fatalf("count = %d, want %d", p.Count(), (b+1)*batchSize)
	}
}
