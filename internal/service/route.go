package service

import (
	"fmt"
	"sync"

	"glimmers/internal/glimmer"
)

// routeScratch pools the grouping bookkeeping the batch routers pay per
// call: RoundManager.IngestBatch groups by round, Registry.IngestBatch by
// tenant, and before this both built a fresh map and index slices for every
// batch — per-frame garbage on a path whose whole point is to amortize
// per-frame cost. Groups are processed in first-seen submission order
// (deterministic, unlike the map iteration it replaces); membership is a
// rescan rather than stored per-group lists, which is O(groups × items)
// with a group count that is almost always 1.
type routeScratch struct {
	rounds  []uint64
	tenants []*Tenant
	done    []bool
	batch   [][]byte
	idx     []int
	errs    []error
}

var routePool = sync.Pool{New: func() any { return new(routeScratch) }}

func getRouteScratch(n int) *routeScratch {
	rs := routePool.Get().(*routeScratch)
	if cap(rs.rounds) < n {
		rs.rounds = make([]uint64, n)
		rs.tenants = make([]*Tenant, n)
		rs.done = make([]bool, n)
	}
	rs.rounds = rs.rounds[:n]
	rs.tenants = rs.tenants[:n]
	rs.done = rs.done[:n]
	for i := 0; i < n; i++ {
		rs.done[i] = false
	}
	return rs
}

// release drops every view and pointer the scratch took into the caller's
// batch before pooling it — the same must-not-retain contract the ingest
// arena honors.
func (rs *routeScratch) release() {
	for i := range rs.batch {
		rs.batch[i] = nil
	}
	for i := range rs.tenants {
		rs.tenants[i] = nil
	}
	for i := range rs.errs {
		rs.errs[i] = nil
	}
	routePool.Put(rs)
}

// errSlots returns n zeroed error slots backed by the scratch.
func (rs *routeScratch) errSlots(n int) []error {
	if cap(rs.errs) < n {
		rs.errs = make([]error, n)
	}
	rs.errs = rs.errs[:n]
	for i := range rs.errs {
		rs.errs[i] = nil
	}
	return rs.errs
}

// IngestBatch routes a batch of encoded contributions, grouping them by
// round so each group runs the pipeline's batch plan. It returns the
// number accepted and one error slot per input, aligned with raws.
func (m *RoundManager) IngestBatch(raws [][]byte) (int, []error) {
	errs := make([]error, len(raws))
	rs := getRouteScratch(len(raws))
	defer rs.release()
	for i, raw := range raws {
		round, err := glimmer.PeekContributionRound(raw)
		if err != nil {
			errs[i] = m.refuse(fmt.Errorf("service: %w", err))
			rs.done[i] = true
			continue
		}
		rs.rounds[i] = round
	}
	for i := range raws {
		if rs.done[i] {
			continue
		}
		round := rs.rounds[i]
		rs.idx = rs.idx[:0]
		for j := i; j < len(raws); j++ {
			if !rs.done[j] && rs.rounds[j] == round {
				rs.done[j] = true
				rs.idx = append(rs.idx, j)
			}
		}
		idx := rs.idx
		p, ok := m.Lookup(round)
		start := 0
		if !ok {
			// Gate creation of an unseen round on its first verifying
			// contribution; items failing the gate are rejected here.
			for ; start < len(idx) && p == nil; start++ {
				if err := m.preverify(raws[idx[start]]); err != nil {
					errs[idx[start]] = m.refuse(err)
					continue
				}
				var cerr error
				if p, cerr = m.ingestRound(round); cerr != nil {
					for _, k := range idx[start:] {
						errs[k] = m.refuse(cerr)
					}
					break
				}
				start-- // re-include the verifying item in the batch
			}
			if p == nil {
				continue
			}
		}
		rs.batch = rs.batch[:0]
		for _, k := range idx[start:] {
			rs.batch = append(rs.batch, raws[k])
		}
		suberrs := rs.errSlots(len(rs.batch))
		p.AddBatchErrs(rs.batch, suberrs)
		for j, err := range suberrs {
			errs[idx[start+j]] = err
		}
	}
	accepted := 0
	for _, err := range errs {
		if err == nil {
			accepted++
		}
	}
	return accepted, errs
}

// IngestBatch routes a batch of encoded contributions, grouping them by
// tenant so each tenant's sub-batch rides its own manager (which groups
// further by round). It returns the number accepted and one error slot per
// input, aligned with raws. The routing peek itself allocates nothing; the
// grouping bookkeeping is pooled.
func (r *Registry) IngestBatch(raws [][]byte) (int, []error) {
	errs := make([]error, len(raws))
	rs := getRouteScratch(len(raws))
	defer rs.release()
	for i, raw := range raws {
		name, err := glimmer.PeekContributionService(raw)
		if err != nil {
			errs[i] = r.refuse(fmt.Errorf("service: %w", err))
			rs.done[i] = true
			continue
		}
		t := r.lookup(name)
		if t == nil {
			errs[i] = r.refuse(fmt.Errorf("%w: %q", ErrUnknownTenant, name))
			rs.done[i] = true
			continue
		}
		rs.tenants[i] = t
	}
	accepted := 0
	for i := range raws {
		if rs.done[i] {
			continue
		}
		t := rs.tenants[i]
		rs.idx = rs.idx[:0]
		rs.batch = rs.batch[:0]
		for j := i; j < len(raws); j++ {
			if !rs.done[j] && rs.tenants[j] == t {
				rs.done[j] = true
				rs.idx = append(rs.idx, j)
				rs.batch = append(rs.batch, raws[j])
			}
		}
		n, terrs := t.manager.IngestBatch(rs.batch)
		accepted += n
		for j, err := range terrs {
			errs[rs.idx[j]] = err
		}
	}
	return accepted, errs
}
