package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// DefaultMaxRounds bounds the live pipelines a RoundManager will create
// from ingest traffic. Round creation is already gated on a verifying
// signature (see preverify), so the cap is the second line of defense: it
// bounds what a compromised-but-vetted client naming arbitrary rounds can
// allocate. A real deployment has at most a handful of rounds in flight.
const DefaultMaxRounds = 64

// ErrTooManyRounds is returned by ingest when a contribution names a new
// round while the manager is already at its live-round limit.
var ErrTooManyRounds = errors.New("service: too many concurrent rounds")

// ErrRoundOutOfWindow is returned by ingest when a contribution names a
// new round too far from the rounds currently in flight.
var ErrRoundOutOfWindow = errors.New("service: round outside admission window")

// RoundManager owns the pipelines for concurrent aggregation rounds, keyed
// by round number. Transports (cmd/glimmerd, internal/gaas) hand it raw
// contributions in any order; each is routed to its round's pipeline by a
// cheap header peek, so a service can keep round N open for stragglers
// while round N+1 is already filling. All methods are safe for concurrent
// use.
type RoundManager struct {
	cfg PipelineConfig // template; Round is overridden per pipeline

	// MaxRounds caps how many live rounds ingest traffic may create
	// (<= 0 means DefaultMaxRounds). Set before serving traffic. The
	// explicit Round method is operator-driven and not subject to the cap.
	MaxRounds int

	// EvictAtCap makes ingest at the cap close and forget the least-filled
	// open round (fewest accepted contributions; highest round number on
	// ties) to admit a new verified one, instead of returning
	// ErrTooManyRounds. Evicting by fill means a vetted client spraying
	// fresh round numbers mostly evicts its own near-empty rounds, and a
	// round with a substantially filled cohort outlasts any spray — though
	// a client willing to spend valid contributions can still tie and
	// displace a round with an equally small count, so this bounds damage
	// rather than eliminating it. Suits unattended daemons (cmd/glimmerd);
	// services that consume aggregates should retire rounds explicitly via
	// Close/Forget instead.
	EvictAtCap bool

	// RoundWindow, when non-zero, restricts which new rounds ingest may
	// create: within RoundWindow of the highest established live round —
	// one with at least two accepted contributions. Anchoring only on
	// established rounds means a single stray far-off round (a stale
	// client or epoch-misconfigured bug, admitted while nothing was live)
	// cannot become the anchor and wedge all real traffic; until some
	// round establishes, admission falls back to the cap alone. This is a
	// guard against accidents, not a security boundary: the round number
	// is client-chosen and the anchor moves with the workload, so a
	// vetted client can still walk the window forward. Deployments that
	// need hard round authority must assign round numbers server-side.
	// Explicitly created rounds (Round) are not subject to it.
	RoundWindow uint64

	// budget, when non-nil, charges every live round against a cap shared
	// with other managers (multi-tenant hosting: see Registry). Set via
	// UseBudget before serving traffic.
	budget *Budget

	mu     sync.Mutex
	rounds map[uint64]*Pipeline
	vetted map[tee.Measurement]bool

	// rejected counts manager-level refusals (unroutable bytes, failed
	// round admission); refusals on an existing round are counted by that
	// round's Pipeline.Rejected.
	rejected atomic.Int64

	// journal, when non-nil, receives durable mutations (see state.go).
	// Set via Registry.SetJournal before the manager serves traffic.
	journal Journal
}

// NewRoundManager creates a manager that spawns pipelines from cfg
// (cfg.Round is ignored; each round gets its own).
func NewRoundManager(cfg PipelineConfig) *RoundManager {
	return &RoundManager{
		cfg:     cfg,
		rounds:  make(map[uint64]*Pipeline),
		vetted:  make(map[tee.Measurement]bool),
		journal: cfg.Journal,
	}
}

// Vet allowlists a measurement for every current and future round.
func (m *RoundManager) Vet(meas tee.Measurement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vetted[meas] = true
	for _, p := range m.rounds {
		p.Vet(meas)
	}
}

// Rejected reports contributions refused before reaching any round's
// pipeline: undecodable headers, failed round-admission verification, and
// window/cap refusals.
func (m *RoundManager) Rejected() int { return int(m.rejected.Load()) }

// refuse records a manager-level rejection.
func (m *RoundManager) refuse(err error) error {
	m.rejected.Add(1)
	if j := m.journal; j != nil {
		j.Rejected(m.cfg.ServiceName, 0, LevelManager, 1)
	}
	return err
}

// UseBudget charges this manager's live rounds against a shared budget
// (see Budget). Must be called before the manager serves traffic; the
// Registry wires it for every tenant it creates.
func (m *RoundManager) UseBudget(b *Budget) {
	m.budget = b
	b.attach(m)
}

// Round returns the pipeline for the given round, creating it if needed.
// Explicit creation is operator-driven: it is charged to the shared budget
// when one is attached, but never blocked by it.
func (m *RoundManager) Round(round uint64) *Pipeline {
	m.mu.Lock()
	_, existed := m.rounds[round]
	p := m.roundLocked(round)
	m.mu.Unlock()
	if !existed && m.budget != nil {
		m.budget.noteCreated(m)
	}
	return p
}

func (m *RoundManager) roundLocked(round uint64) *Pipeline {
	if p, ok := m.rounds[round]; ok {
		return p
	}
	cfg := m.cfg
	cfg.Round = round
	p := NewPipeline(cfg)
	p.journal = m.journal
	for meas := range m.vetted {
		p.Vet(meas)
	}
	m.rounds[round] = p
	if j := m.journal; j != nil {
		j.RoundCreated(m.cfg.ServiceName, round)
	}
	return p
}

// Lookup returns the pipeline for a round without creating one.
func (m *RoundManager) Lookup(round uint64) (*Pipeline, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.rounds[round]
	return p, ok
}

// Rounds lists the rounds with live pipelines, ascending.
func (m *RoundManager) Rounds() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.rounds))
	for r := range m.rounds {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// preverify runs the stateless checks a pipeline would (see
// checkContribution) without touching round state. It gates pipeline
// creation: only a contribution that would be accepted (duplicates aside)
// may bring a new round into existence, so unauthenticated bytes can
// never allocate rounds.
func (m *RoundManager) preverify(raw []byte) error {
	s := scratchPool.Get().(*ingestScratch)
	defer putScratch(s)
	_, _, err := checkContribution(m.cfg.ServiceName, m.cfg.Verify, m.cfg.Tickets,
		m.cfg.Dim, nil, m.isVetted, raw, s)
	return err
}

// GrantTicket runs the service side of the attested-session-ticket
// exchange against this manager's identity: the request's one ECDSA
// signature is checked with the same key that verifies contributions, the
// requesting enclave's measurement against the same allowlist, and the
// derived session key lands in the manager's ticket table — after which
// every contribution of the session pays a constant-time MAC instead.
// Refusals here are control-plane errors returned to the caller; they are
// not counted as contribution rejections.
func (m *RoundManager) GrantTicket(raw []byte) ([]byte, error) {
	req, err := wire.DecodeTicketRequest(raw)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return m.grantTicket(req)
}

// grantTicket is the post-decode grant path shared with Registry routing.
func (m *RoundManager) grantTicket(req wire.TicketRequest) ([]byte, error) {
	if m.cfg.Tickets == nil {
		return nil, ErrTicketsDisabled
	}
	return m.cfg.Tickets.Grant(m.cfg.ServiceName, m.cfg.Verify, m.isVetted, req)
}

// isVetted applies the shared admission rule to the manager's allowlist.
func (m *RoundManager) isVetted(meas tee.Measurement) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return allowlistAdmits(m.vetted, meas)
}

// ingestRound creates a verified contribution's round, refusing past the
// MaxRounds cap (and, when a shared budget is attached, past the global
// cap). Evicted pipelines are closed only after the manager lock is
// released: Close drains the victim's in-flight batches, and holding m.mu
// through that drain would stall ingest for every other round.
func (m *RoundManager) ingestRound(round uint64) (*Pipeline, error) {
	// Cheap refusals come before the budget round-trip: a round that
	// already exists needs no slot, and an out-of-window round must be
	// refused without touching the budget — reserving first would let a
	// vetted client spraying out-of-window rounds evict other tenants'
	// rounds without ever creating one of its own.
	if p, err := m.precheckAdmission(round); p != nil || err != nil {
		return p, err
	}
	// Reserve a global slot before per-manager admission: the budget may
	// evict a round from another manager (or this one), which must not
	// happen under m.mu.
	if m.budget != nil {
		victims, err := m.budget.reserve(m)
		for _, v := range victims {
			v.Close()
		}
		if err != nil {
			return nil, err
		}
	}
	p, victims, created, err := m.admitRound(round)
	if m.budget != nil {
		m.budget.settle(m, created && err == nil)
		if len(victims) > 0 {
			m.budget.noteRemoved(m, len(victims))
		}
	}
	for _, v := range victims {
		v.Close()
	}
	return p, err
}

// precheckAdmission runs the admission checks that need no budget slot:
// an existing round is returned as-is, and an out-of-window round is
// refused. admitRound repeats both checks under the same lock (the state
// may move between the two acquisitions); this pass only guarantees the
// cheap refusals cost nothing globally.
func (m *RoundManager) precheckAdmission(round uint64) (*Pipeline, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.rounds[round]; ok {
		return p, nil
	}
	return nil, m.windowRefusesLocked(round)
}

// windowRefusesLocked applies the RoundWindow admission rule.
func (m *RoundManager) windowRefusesLocked(round uint64) error {
	if m.RoundWindow == 0 {
		return nil
	}
	anchor, anchored := uint64(0), false
	for r, p := range m.rounds {
		if p.Count() >= 2 && (!anchored || r > anchor) {
			anchor, anchored = r, true
		}
	}
	if !anchored {
		return nil
	}
	outsideAbove := round > anchor && round-anchor > m.RoundWindow
	outsideBelow := round < anchor && anchor-round > m.RoundWindow
	if outsideAbove || outsideBelow {
		return ErrRoundOutOfWindow
	}
	return nil
}

func (m *RoundManager) admitRound(round uint64) (p *Pipeline, victims []*Pipeline, created bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.rounds[round]; ok {
		return p, nil, false, nil
	}
	if err := m.windowRefusesLocked(round); err != nil {
		return nil, nil, false, err
	}
	max := m.MaxRounds
	if max <= 0 {
		max = DefaultMaxRounds
	}
	for len(m.rounds) >= max {
		if !m.EvictAtCap {
			return nil, victims, false, ErrTooManyRounds
		}
		victim, found := m.evictLeastFilledLocked()
		if !found {
			return nil, victims, false, ErrTooManyRounds
		}
		victims = append(victims, victim)
	}
	return m.roundLocked(round), victims, true, nil
}

// evictLeastFilledLocked removes and returns the least-filled open round.
// Only open rounds are evictable: a sealed or closed pipeline stays
// registered so its anti-reopen guarantee (stragglers get
// ErrRoundSealed/ErrRoundClosed, never a fresh dedup set) holds. Among
// open rounds the least-filled loses; on a count tie the highest round
// number loses, so a client spraying ascending fresh rounds evicts its own
// spray before a round that opened earlier. The caller must Close the
// victim outside m.mu.
func (m *RoundManager) evictLeastFilledLocked() (*Pipeline, bool) {
	var victim uint64
	victimCount, found := 0, false
	for r, p := range m.rounds {
		if !p.open() {
			continue
		}
		c := p.Count()
		if !found || c < victimCount || (c == victimCount && r > victim) {
			victim, victimCount, found = r, c, true
		}
	}
	if !found {
		return nil, false
	}
	p := m.rounds[victim]
	delete(m.rounds, victim)
	if j := m.journal; j != nil {
		// The victim's own journal stays attached, so its Close (run by
		// the caller outside m.mu) still appends a RoundClosed record —
		// replay drops it, since this record already removed the round.
		j.RoundForgotten(m.cfg.ServiceName, victim)
	}
	return p, true
}

// dropLeastFilled is the shared budget's cross-tenant eviction hook: it
// removes and returns this manager's least-filled open round, or reports
// that nothing here is evictable. The budget adjusts its own accounting;
// the caller Closes the victim outside every lock.
func (m *RoundManager) dropLeastFilled() (*Pipeline, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictLeastFilledLocked()
}

// Ingest routes one encoded contribution to its round's pipeline. A
// contribution for a round with no live pipeline must fully verify before
// the round is created (it then verifies once more inside the pipeline —
// the double cost applies only to each round's first contribution).
func (m *RoundManager) Ingest(raw []byte) error {
	round, err := glimmer.PeekContributionRound(raw)
	if err != nil {
		return m.refuse(fmt.Errorf("service: %w", err))
	}
	p, ok := m.Lookup(round)
	if !ok {
		if err := m.preverify(raw); err != nil {
			return m.refuse(err)
		}
		if p, err = m.ingestRound(round); err != nil {
			return m.refuse(err)
		}
	}
	return p.Add(raw)
}

// Seal seals one round's pipeline (see Pipeline.Seal). Sealing a round
// that was never opened creates and immediately seals it, so a late
// straggler cannot reopen it.
func (m *RoundManager) Seal(round uint64) error {
	return m.Round(round).Seal()
}

// Close closes one round's pipeline (see Pipeline.Close). The pipeline
// stays registered so stragglers for the round get ErrRoundClosed instead
// of silently reopening it; the returned pipeline still serves
// Sum/Mean/Count for whoever consumes the aggregate. Call Forget once the
// aggregate is consumed to release the round's dedup state.
func (m *RoundManager) Close(round uint64) *Pipeline {
	p := m.Round(round)
	p.Close()
	return p
}

// Forget drops a round's pipeline entirely, closing it first (so any
// worker pool is torn down) and releasing its memory. A fresh verified
// contribution for a forgotten round would start a new pipeline, so only
// forget rounds the transport no longer routes.
func (m *RoundManager) Forget(round uint64) {
	m.mu.Lock()
	p, ok := m.rounds[round]
	delete(m.rounds, round)
	m.mu.Unlock()
	if ok {
		if j := m.journal; j != nil {
			j.RoundForgotten(m.cfg.ServiceName, round)
		}
		if m.budget != nil {
			m.budget.noteRemoved(m, 1)
		}
		p.Close()
	}
}
