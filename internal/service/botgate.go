package service

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"glimmers/internal/audit"
	"glimmers/internal/glimmer"
	"glimmers/internal/xcrypto"
)

// BotGate is the §4.1 web-service side of bot detection: it issues
// challenges, audits incoming verdict messages against the public format,
// and accepts exactly one bit per challenge — human or not. It is safe for
// concurrent use: a production gate issues and checks challenges from many
// request handlers at once.
type BotGate struct {
	serviceName string
	verify      *xcrypto.VerifyKey
	format      *audit.Format
	// issued tracks outstanding challenges; each may be answered once.
	mu     sync.Mutex
	issued map[string]bool
}

// BotGate errors.
var (
	ErrUnknownChallenge = errors.New("service: unknown or reused challenge")
	ErrVerdictSignature = errors.New("service: verdict signature invalid")
)

// NewBotGate creates a gate verifying verdicts with the Glimmer
// contribution key.
func NewBotGate(serviceName string, verify *xcrypto.VerifyKey) *BotGate {
	return &BotGate{
		serviceName: serviceName,
		verify:      verify,
		format:      audit.VerdictFormat(serviceName),
		issued:      make(map[string]bool),
	}
}

// NewChallenge issues a fresh nonce for one detection round.
func (g *BotGate) NewChallenge() ([]byte, error) {
	c := make([]byte, 16)
	if _, err := rand.Read(c); err != nil {
		return nil, fmt.Errorf("service: challenge: %w", err)
	}
	g.mu.Lock()
	g.issued[string(c)] = true
	g.mu.Unlock()
	return c, nil
}

// CheckVerdict audits and verifies one verdict message, returning the
// single bit it carries. The challenge is consumed: replays fail. The
// challenge is claimed atomically up front so two concurrent answers to
// the same challenge cannot both count; a claim whose verdict fails
// verification is released for retry.
func (g *BotGate) CheckVerdict(raw []byte) (human bool, err error) {
	v, err := glimmer.DecodeVerdict(raw)
	if err != nil {
		return false, fmt.Errorf("service: verdict: %w", err)
	}
	g.mu.Lock()
	claimed := g.issued[string(v.Challenge)]
	delete(g.issued, string(v.Challenge))
	g.mu.Unlock()
	if !claimed {
		return false, ErrUnknownChallenge
	}
	defer func() {
		if err != nil {
			g.mu.Lock()
			g.issued[string(v.Challenge)] = true
			g.mu.Unlock()
		}
	}()
	// Runtime audit: the message must match the public format exactly and
	// carry no more than the format's one bit.
	rep, err := g.format.Check(raw, map[string][]byte{"challenge": v.Challenge})
	if err != nil {
		return false, fmt.Errorf("service: audit: %w", err)
	}
	if rep.InfoBits != 1 {
		return false, fmt.Errorf("service: audit: message carries %d bits, want 1", rep.InfoBits)
	}
	if v.ServiceName != g.serviceName {
		return false, ErrWrongService
	}
	if !g.verify.Verify(v.SignedBytes(), v.Signature) {
		return false, ErrVerdictSignature
	}
	return v.Human, nil
}
