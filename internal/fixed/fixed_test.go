package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.1, 0.5, 0.9, 1.0, 538, 0.000001, 123.456}
	for _, v := range cases {
		got := FromFloat(v).Float()
		if math.Abs(got-v) > 1.0/Scale {
			t.Errorf("round trip %v -> %v, error > one unit", v, got)
		}
	}
}

func TestFromFloatNegative(t *testing.T) {
	v := -0.25
	got := FromFloat(v).Float()
	if math.Abs(got-v) > 1.0/Scale {
		t.Errorf("round trip %v -> %v", v, got)
	}
}

func TestInUnitRange(t *testing.T) {
	cases := []struct {
		v    float64
		want bool
	}{
		{0, true}, {0.5, true}, {1.0, true},
		{1.0 + 2.0/Scale, false}, {538, false}, {-0.1, false},
	}
	for _, c := range cases {
		if got := FromFloat(c.v).InUnitRange(); got != c.want {
			t.Errorf("InUnitRange(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestBlindingCancelsExactly(t *testing.T) {
	// The core ring property the whole design rests on: adding and removing
	// an arbitrary mask is the identity, even when intermediate values wrap.
	x := FromFloat(0.9)
	masks := []Ring{0, 1, Ring(1) << 63, ^Ring(0), 0xdeadbeefcafebabe}
	for _, m := range masks {
		if got := x.Add(m).Sub(m); got != x {
			t.Errorf("mask %x did not cancel: %v != %v", uint64(m), got, x)
		}
	}
}

func TestZeroSumMasksCancelInAggregate(t *testing.T) {
	// Simulate Figure 1c: three clients, masks summing to zero, aggregate of
	// blinded values equals aggregate of true values exactly.
	xs := []Ring{FromFloat(0.9), FromFloat(0.1), FromFloat(0.8)}
	m1, m2 := Ring(0x1234567890abcdef), Ring(0xfedcba9876543210)
	m3 := -(m1 + m2)
	blinded := []Ring{xs[0] + m1, xs[1] + m2, xs[2] + m3}
	var trueSum, blindSum Ring
	for i := range xs {
		trueSum += xs[i]
		blindSum += blinded[i]
	}
	if trueSum != blindSum {
		t.Fatalf("blinded aggregate %v != true aggregate %v", blindSum, trueSum)
	}
}

func TestVectorAddSub(t *testing.T) {
	a := FromFloats([]float64{0.1, 0.2, 0.3})
	b := FromFloats([]float64{0.4, 0.5, 0.6})
	c := a.Clone()
	c.AddInPlace(b)
	c.SubInPlace(b)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("add then sub not identity at %d", i)
		}
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVector(2).AddInPlace(NewVector(3))
}

func TestSum(t *testing.T) {
	a := FromFloats([]float64{0.1, 0.2})
	b := FromFloats([]float64{0.3, 0.4})
	sum, err := Sum(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0.6}
	for i, f := range sum.Floats() {
		if math.Abs(f-want[i]) > 2.0/Scale {
			t.Errorf("sum[%d] = %v, want %v", i, f, want[i])
		}
	}
	if _, err := Sum(); err == nil {
		t.Error("Sum() of nothing should fail")
	}
	if _, err := Sum(a, NewVector(3)); err == nil {
		t.Error("Sum with mismatched lengths should fail")
	}
}

func TestMean(t *testing.T) {
	a := FromFloats([]float64{0.2, 1.0})
	b := FromFloats([]float64{0.4, 0.0})
	mean, err := Mean(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.3, 0.5}
	for i, f := range mean.Floats() {
		if math.Abs(f-want[i]) > 2.0/Scale {
			t.Errorf("mean[%d] = %v, want %v", i, f, want[i])
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromFloats([]float64{0.1, 0.9})
	b := FromFloats([]float64{0.1, 0.4})
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 2.0/Scale {
		t.Errorf("MaxAbsDiff = %v, want 0.5", d)
	}
	if _, err := MaxAbsDiff(a, NewVector(3)); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromFloats([]float64{0.5})
	b := a.Clone()
	b[0] = 0
	if a[0] == 0 {
		t.Fatal("clone aliases original")
	}
}

// Property: (x + m) - m == x for all x, m — blinding is always reversible.
func TestQuickMaskCancellation(t *testing.T) {
	f := func(x, m uint64) bool {
		r := Ring(x)
		return r.Add(Ring(m)).Sub(Ring(m)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ring addition is commutative and associative — aggregation
// order never matters.
func TestQuickRingAdditionLaws(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := Ring(a), Ring(b), Ring(c)
		return x.Add(y) == y.Add(x) && x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoding error is always below one fixed-point unit for values
// within the integer headroom.
func TestQuickEncodingError(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw) / float64(1<<16) // spans [0, 65536)
		return math.Abs(FromFloat(v).Float()-v) <= 1.0/Scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: vector sum of k copies of v decodes to k*v within k units.
func TestQuickRepeatedSum(t *testing.T) {
	f := func(raw uint16, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		v := float64(raw) / float64(1<<16)
		vec := FromFloats([]float64{v})
		vs := make([]Vector, k)
		for i := range vs {
			vs[i] = vec
		}
		sum, err := Sum(vs...)
		if err != nil {
			return false
		}
		return math.Abs(sum[0].Float()-float64(k)*v) <= float64(k)/Scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
