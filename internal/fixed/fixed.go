// Package fixed implements the fixed-point ring encoding used for
// blinding-compatible model aggregation.
//
// Federated contributions in the Glimmer design are aggregated by exact
// modular addition: each client adds a secret mask to its value and the
// service recovers the true sum because the masks cancel (Figure 1c of the
// paper). Floating-point addition is neither associative nor exact, so model
// weights — real numbers in [0, 1] — are encoded as fixed-point integers in
// the ring Z_2^64, where addition wraps and masks cancel bit-exactly.
//
// The encoding is Q44.20: twenty fractional bits, leaving 44 integer bits of
// headroom so that sums over millions of clients cannot overflow the true
// (unwrapped) value. One Ring unit is 2^-20 ≈ 9.5e-7, far below the model's
// meaningful precision.
package fixed

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// FracBits is the number of fractional bits in the encoding.
const FracBits = 20

// Scale is the multiplier applied to a real value during encoding.
const Scale = 1 << FracBits

// Ring is an element of Z_2^64 carrying a Q44.20 fixed-point value.
// Addition and subtraction wrap, which is exactly the behaviour blinding
// needs: x + mask - mask == x regardless of intermediate wraparound.
type Ring uint64

// FromFloat encodes a non-negative real value. Values are rounded to the
// nearest representable unit. FromFloat does not range-check: encoding an
// out-of-range value (like the paper's adversarial 538) is intentionally
// possible, because detecting it is the Glimmer's job, not the encoder's.
func FromFloat(v float64) Ring {
	if v < 0 {
		// Negative weights do not occur in the paper's [0,1] model, but the
		// ring represents them as two's complement so that aggregation
		// arithmetic stays exact if a workload produces them.
		return -FromFloat(-v)
	}
	return Ring(v*Scale + 0.5)
}

// Float decodes the ring element back to a real value, interpreting the
// element as a two's-complement signed quantity.
func (r Ring) Float() float64 {
	return float64(int64(r)) / Scale
}

// Add returns r + other in the ring.
func (r Ring) Add(other Ring) Ring { return r + other }

// Sub returns r - other in the ring.
func (r Ring) Sub(other Ring) Ring { return r - other }

// InUnitRange reports whether the element decodes to a value in [0, 1].
// This is the paper's canonical validity predicate for model weights.
func (r Ring) InUnitRange() bool {
	v := int64(r)
	return v >= 0 && v <= Scale
}

// String formats the element as its decoded real value.
func (r Ring) String() string { return fmt.Sprintf("%.6f", r.Float()) }

// Vector is a slice of ring elements: one federated model contribution.
type Vector []Ring

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// FromFloats encodes a real-valued vector.
func FromFloats(vs []float64) Vector {
	out := make(Vector, len(vs))
	for i, v := range vs {
		out[i] = FromFloat(v)
	}
	return out
}

// Floats decodes the vector to real values.
func (v Vector) Floats() []float64 {
	out := make([]float64, len(v))
	for i, r := range v {
		out[i] = r.Float()
	}
	return out
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// digestScratch pools the contiguous serialization buffer Digest hashes, so
// per-round digests (sim traces, shutdown reports) reuse one buffer per P
// instead of re-growing it every call.
var digestScratch = sync.Pool{New: func() any { return new([]byte) }}

// Digest returns a stable 16-hex-digit digest of v (FNV-64a over the
// big-endian ring bits) — the aggregate fingerprint shared by the fleet
// simulator's traces and glimmerd's shutdown report, so the two can be
// compared line for line. The whole vector is serialized into one reused
// contiguous buffer and hashed with a single Write: the byte stream — and
// therefore the digest — is identical to the original per-element loop,
// which fed the hasher through an interface call per element.
func (v Vector) Digest() string {
	bp := digestScratch.Get().(*[]byte)
	buf := v.AppendWire((*bp)[:0])
	h := fnv.New64a()
	_, _ = h.Write(buf)
	*bp = buf
	digestScratch.Put(bp)
	return fmt.Sprintf("%016x", h.Sum64())
}

// AddInPlace adds other into v element-wise. It panics on length mismatch:
// mixing contributions of different dimensionality is a programming error
// upstream, not a recoverable condition.
func (v Vector) AddInPlace(other Vector) {
	if len(v) != len(other) {
		panic(fmt.Sprintf("fixed: vector length mismatch %d != %d", len(v), len(other)))
	}
	addLanes(v, other)
}

// SubInPlace subtracts other from v element-wise.
func (v Vector) SubInPlace(other Vector) {
	if len(v) != len(other) {
		panic(fmt.Sprintf("fixed: vector length mismatch %d != %d", len(v), len(other)))
	}
	for i := range v {
		v[i] -= other[i]
	}
}

// DivScalarInPlace divides every element by n using truncating signed
// division, the averaging step of FedAvg. It panics on n == 0: dividing an
// aggregate by a zero cohort is a programming error upstream.
func (v Vector) DivScalarInPlace(n int64) {
	if n == 0 {
		panic("fixed: division by zero cohort size")
	}
	for i := range v {
		v[i] = Ring(int64(v[i]) / n)
	}
}

// Sum returns the element-wise sum of vectors, all of which must share the
// same length. Sum of no vectors is an error because the dimension is
// unknown.
func Sum(vectors ...Vector) (Vector, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("fixed: sum of zero vectors has unknown dimension")
	}
	out := vectors[0].Clone()
	for _, v := range vectors[1:] {
		if len(v) != len(out) {
			return nil, fmt.Errorf("fixed: vector length mismatch %d != %d", len(v), len(out))
		}
		out.AddInPlace(v)
	}
	return out, nil
}

// Mean returns the element-wise mean of vectors, the FedAvg aggregate.
func Mean(vectors ...Vector) (Vector, error) {
	sum, err := Sum(vectors...)
	if err != nil {
		return nil, err
	}
	sum.DivScalarInPlace(int64(len(vectors)))
	return sum, nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two decoded vectors, a convergence / skew metric for experiments.
func MaxAbsDiff(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("fixed: vector length mismatch %d != %d", len(a), len(b))
	}
	var maxDiff float64
	for i := range a {
		d := a[i].Float() - b[i].Float()
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}
