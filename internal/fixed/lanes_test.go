package fixed

import (
	"math/rand"
	"testing"

	"glimmers/internal/race"
)

// randVector draws ring elements across the full 64-bit range, biased to
// include the wraparound-heavy corners the Q44.20 encoding never produces
// on its own: exact blinding masks are uniform in Z_2^64, so the wide-lane
// paths must be bit-exact there too.
func randVector(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		switch rng.Intn(8) {
		case 0:
			v[i] = Ring(^uint64(0)) // -1: wraps on nearly every add
		case 1:
			v[i] = Ring(1 << 63) // sign corner
		case 2:
			v[i] = 0
		default:
			v[i] = Ring(rng.Uint64())
		}
	}
	return v
}

// TestAddBatchInPlaceMatchesRepeatedAdd is the core property: one batch add
// equals the per-item loop it replaces, on every length (unroll remainders
// 0..3 all covered) and across wraparound values.
func TestAddBatchInPlaceMatchesRepeatedAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 255, 256, 257} {
		for trial := 0; trial < 20; trial++ {
			batch := make([]Vector, rng.Intn(9))
			for i := range batch {
				batch[i] = randVector(rng, dim)
			}
			base := randVector(rng, dim)
			want := base.Clone()
			for _, o := range batch {
				// The original scalar loop, kept inline as the oracle.
				for i := range want {
					want[i] += o[i]
				}
			}
			got := base.Clone()
			got.AddBatchInPlace(batch)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim %d trial %d: lane %d = %#x, want %#x", dim, trial, i, uint64(got[i]), uint64(want[i]))
				}
			}
		}
	}
}

// TestAccumulatePathsAgree checks the three accumulation entry points —
// AddInPlace, AccumulateInto over raw lanes, and AccumulateWireInto over
// the wire encoding — land on identical sums.
func TestAccumulatePathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dim := range []int{0, 1, 3, 4, 6, 256, 301} {
		for trial := 0; trial < 10; trial++ {
			src := randVector(rng, dim)
			lanes := make([]uint64, dim)
			for i, r := range src {
				lanes[i] = uint64(r)
			}
			be := src.AppendWire(nil)

			a := randVector(rng, dim)
			b := a.Clone()
			c := a.Clone()
			a.AddInPlace(src)
			AccumulateInto(b, lanes)
			AccumulateWireInto(c, be)
			for i := range a {
				if a[i] != b[i] || a[i] != c[i] {
					t.Fatalf("dim %d trial %d lane %d: AddInPlace %#x, AccumulateInto %#x, AccumulateWireInto %#x",
						dim, trial, i, uint64(a[i]), uint64(b[i]), uint64(c[i]))
				}
			}
		}
	}
}

// TestAddBatchInPlacePanicsBeforeMutating locks the all-or-nothing check
// order: a bad vector anywhere in the batch must leave the accumulator
// untouched, not partially summed.
func TestAddBatchInPlacePanicsBeforeMutating(t *testing.T) {
	v := Vector{1, 2, 3}
	batch := []Vector{{10, 10, 10}, {1, 2}} // second has the wrong length
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AddBatchInPlace did not panic on length mismatch")
			}
		}()
		v.AddBatchInPlace(batch)
	}()
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("accumulator mutated by a rejected batch: %v", v)
	}
}

// TestDigestGolden locks Digest to the pre-rewrite output: these constants
// were produced by the original per-element loop, and glimmerd shutdown
// reports and sim traces compare digests across versions, so they must
// never drift.
func TestDigestGolden(t *testing.T) {
	cases := []struct {
		name string
		v    Vector
		want string
	}{
		{"empty", Vector{}, "cbf29ce484222325"},
		{"unit5", FromFloats([]float64{0, 0.25, 0.5, 0.75, 1}), "a89e3577b7b0a0f5"},
		{"wrap5", Vector{0, 1, Ring(^uint64(0)), 1 << 63, 0x0123456789ABCDEF}, "309ec80d9171d42a"},
	}
	big := NewVector(256)
	for i := range big {
		big[i] = Ring(uint64(i)*0x9E3779B97F4A7C15 + 1)
	}
	cases = append(cases, struct {
		name string
		v    Vector
		want string
	}{"dim256", big, "43c5bbe86c5682fc"})
	for _, tc := range cases {
		if got := tc.v.Digest(); got != tc.want {
			t.Errorf("%s: Digest = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestAccumulateAllocFree pins the wide-lane paths' zero-allocation
// contract on the shard hot path.
func TestAccumulateAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	dst := NewVector(256)
	src := NewVector(256)
	lanes := make([]uint64, 256)
	be := src.AppendWire(nil)
	batch := []Vector{src, src, src, src}
	if got := testing.AllocsPerRun(100, func() {
		dst.AddBatchInPlace(batch)
		AccumulateInto(dst, lanes)
		AccumulateWireInto(dst, be)
	}); got > 0 {
		t.Errorf("wide-lane accumulate: %.1f allocs/op, want 0", got)
	}
}

func BenchmarkAccumulateWireInto(b *testing.B) {
	dst := NewVector(256)
	be := NewVector(256).AppendWire(nil)
	b.SetBytes(int64(len(be)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AccumulateWireInto(dst, be)
	}
}

func BenchmarkAddInPlace(b *testing.B) {
	dst := NewVector(256)
	src := NewVector(256)
	b.SetBytes(256 * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.AddInPlace(src)
	}
}
