package fixed

import (
	"encoding/binary"
	"fmt"
)

// Wide-lane accumulation: the batch ingest path sums hundreds of vectors
// into a shard accumulator per frame, so the inner loops here are written
// for the compiler rather than the reader — lengths hoisted, slices
// re-sliced to full-capacity windows so bounds checks vanish, bodies
// unrolled four lanes wide. Every function is bit-exact with the scalar
// loop it replaces; the property tests in lanes_test.go hold them to that.

// addLanes adds src into dst four lanes at a time. Callers have already
// checked the lengths match.
func addLanes(dst, src Vector) {
	n := len(dst)
	if len(src) < n {
		return // unreachable after the callers' checks; keeps BCE honest
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// AddBatchInPlace adds every vector in vs into v element-wise. It panics on
// any length mismatch — before touching v, so a bad batch never leaves a
// partial sum behind. One call replaces len(vs) AddInPlace calls on the
// shard hot path, keeping the accumulator hot in cache across the batch.
func (v Vector) AddBatchInPlace(vs []Vector) {
	for _, o := range vs {
		if len(o) != len(v) {
			panic(fmt.Sprintf("fixed: vector length mismatch %d != %d", len(o), len(v)))
		}
	}
	for _, o := range vs {
		addLanes(v, o)
	}
}

// AccumulateInto adds raw ring lanes (uint64 bit patterns, one per element)
// into dst. It is the bridge for callers that hold decoded wire lanes and
// want to skip the []uint64 → Vector conversion copy.
func AccumulateInto(dst Vector, lanes []uint64) {
	n := len(dst)
	if len(lanes) != n {
		panic(fmt.Sprintf("fixed: lane count mismatch %d != %d", len(lanes), n))
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := lanes[i : i+4 : i+4]
		d[0] += Ring(s[0])
		d[1] += Ring(s[1])
		d[2] += Ring(s[2])
		d[3] += Ring(s[3])
	}
	for ; i < n; i++ {
		dst[i] += Ring(lanes[i])
	}
}

// AccumulateWireInto adds a vector straight from its wire encoding — the
// contiguous big-endian uint64 lane bytes inside a transport frame — into
// dst, with no intermediate decode buffer at all. be must be exactly
// 8·len(dst) bytes. This is the zero-copy terminal of the batch ingest
// path: the frame's lane bytes flow into the shard accumulator untouched.
func AccumulateWireInto(dst Vector, be []byte) {
	n := len(dst)
	if len(be) != n*8 {
		panic(fmt.Sprintf("fixed: wire lane bytes %d != %d", len(be), n*8))
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		b := be[i*8 : i*8+32 : i*8+32]
		d := dst[i : i+4 : i+4]
		d[0] += Ring(binary.BigEndian.Uint64(b[0:8]))
		d[1] += Ring(binary.BigEndian.Uint64(b[8:16]))
		d[2] += Ring(binary.BigEndian.Uint64(b[16:24]))
		d[3] += Ring(binary.BigEndian.Uint64(b[24:32]))
	}
	for ; i < n; i++ {
		dst[i] += Ring(binary.BigEndian.Uint64(be[i*8 : i*8+8]))
	}
}

// AppendWire appends v's wire lane encoding (big-endian uint64 per element)
// to dst and returns the extended slice — the serialization half of
// AccumulateWireInto, shared by Digest and the codec.
func (v Vector) AppendWire(dst []byte) []byte {
	for _, r := range v {
		dst = binary.BigEndian.AppendUint64(dst, uint64(r))
	}
	return dst
}
