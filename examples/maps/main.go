// Maps: the photos-for-maps scenario (§1, §3) — public contributions,
// private validation.
//
// User photos for map locations are meant to be shared, so they are not
// blinded. But validating that the user really took that photo at that
// place needs the device's GPS track, WiFi observations, and camera
// fingerprint — data far too sensitive to upload. The Glimmer checks the
// photo against that context locally and endorses only corroborated
// contributions.
//
// Run with: go run ./examples/maps
package main

import (
	"errors"
	"fmt"
	"log"

	"glimmers"
	"glimmers/internal/fixed"
	"glimmers/internal/geo"
	"glimmers/internal/glimmer"
	"glimmers/internal/xcrypto"
)

func main() {
	tb, err := glimmers.NewTestbed("maps.example", geo.DefaultPredicate("photo-validator"))
	if err != nil {
		log.Fatal(err)
	}
	dev, err := tb.NewProvisionedDevice(2, glimmers.ModeNone, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The device's private day: a walk through downtown Toronto.
	prg := xcrypto.NewPRG([]byte("a day downtown"))
	downtown := geo.Point{LatMicro: 43_653_000, LonMicro: -79_383_000}
	ctx := geo.DeviceContext{
		Track:          geo.RandomTrack(prg, downtown, 60, 25, 60_000),
		CamFingerprint: 0xC0FFEE,
	}

	submit := func(name string, photo geo.Photo, round uint64) {
		features := geo.ContextFeatures(photo, ctx)
		contribution := fixed.Vector{fixed.Ring(photo.Claimed.LatMicro), fixed.Ring(photo.Claimed.LonMicro)}
		sc, err := dev.Contribute(round, contribution, features)
		switch {
		case err == nil:
			fmt.Printf("%-34s endorsed (lat=%d lon=%d, signed=%v)\n", name,
				int64(sc.Blinded[0]), int64(sc.Blinded[1]),
				tb.Service.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature))
		case errors.Is(err, glimmer.ErrRejected):
			fmt.Printf("%-34s REFUSED (context does not corroborate)\n", name)
		default:
			log.Fatal(err)
		}
	}

	// A genuine photo at the cafe the user actually visited.
	cafe := ctx.Track[30]
	submit("genuine cafe photo:", geo.Photo{
		TakenMs: cafe.TimeMs + 45_000, Claimed: cafe.Loc,
		CamFingerprint: 0xC0FFEE, Wifi: cafe.Wifi,
	}, 1)

	// A photo "from" a landmark across town the user never visited.
	landmark := geo.Point{LatMicro: downtown.LatMicro + 700_000, LonMicro: downtown.LonMicro + 200_000}
	submit("forged landmark photo:", geo.Photo{
		TakenMs: cafe.TimeMs, Claimed: landmark,
		CamFingerprint: 0xC0FFEE, Wifi: geo.WifiAt(landmark),
	}, 2)

	// A photo stolen from someone else's camera at the right place.
	submit("stolen photo (foreign camera):", geo.Photo{
		TakenMs: cafe.TimeMs, Claimed: cafe.Loc,
		CamFingerprint: 0xDEAD, Wifi: cafe.Wifi,
	}, 3)

	fmt.Println("\nThe GPS track, WiFi history, and camera fingerprint never left the device.")
}
