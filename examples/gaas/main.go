// GaaS: Glimmer-as-a-service (§4.2) — an IoT thermostat without a TEE uses
// a Glimmer hosted on another machine.
//
// The host (think: a set-top box, a university server, the EFF) runs
// glimmerd's hardened serving edge: TLS transport, connection caps, and
// per-connection deadlines around the attested session protocol. The
// thermostat dials it with DialContext, verifies the enclave quote against
// the attestation root, and pins the measurement trust-on-first-use in a
// known-hosts store — a host that later swaps the enclave is refused loudly.
// The host relays ciphertext and learns nothing.
//
// Run with: go run ./examples/gaas
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"glimmers"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
)

func main() {
	const dim = 8 // eight temperature readings, each normalized to [0,1]

	// The service accepts normalized sensor vectors.
	tb, err := glimmers.NewTestbed("thermostats.example", predicate.UnitRangeCheck("sensor-range", dim))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := tb.Service.GlimmerConfig(dim, glimmers.ModeNone, glimmers.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}

	// The neutral host machine: the tenant mounts on a command mux like a
	// route, and the host is also the ingest front door — batches of signed
	// contributions flow into the service's concurrent sharded pipeline.
	mux := gaas.NewServeMux()
	mux.Mount(cfg, func(dev *glimmer.Device) error {
		payload, err := tb.Service.BasePayload()
		if err != nil {
			return err
		}
		return tb.Service.Provision(dev, payload)
	})
	rounds := glimmers.NewRoundManager(glimmers.PipelineConfig{
		ServiceName: tb.Service.Name(),
		Verify:      tb.Service.ContributionVerifyKey(),
		Dim:         dim,
	})

	// The public edge: TLS for transport privacy (trust stays with
	// attestation, so a self-signed cert is fine), deadlines so a stalled
	// peer cannot pin an enclave slot, and caps so a flood is shed with an
	// error instead of queueing forever.
	tlsConf, err := gaas.SelfSignedServerTLS("127.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	server := gaas.New(gaas.ServerConfig{
		Platform:           tb.Platform,
		Mux:                mux,
		Ingest:             rounds,
		TLS:                tlsConf,
		ReadTimeout:        5 * time.Second,
		WriteTimeout:       5 * time.Second,
		IdleTimeout:        time.Minute,
		MaxConns:           256,
		MaxConnsPerIP:      32,
		MaxInflightBatches: 64,
	})
	tb.Service.Vet(server.Measurement())
	rounds.Vet(server.Measurement())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = server.Serve(ln) }()
	fmt.Printf("glimmer host serving TLS on %s (measurement %s)\n", ln.Addr(), server.Measurement())

	// The IoT device: no TEE. The quote verifier checks the enclave is
	// genuine; the known-hosts store pins whatever measurement the service
	// presents on first use, so this first connection is the trust
	// decision — every later one is held to it.
	verifier := &glimmers.QuoteVerifier{Root: tb.AS.Root()}
	known := gaas.NewKnownHosts() // file-backed in production: gaas.LoadKnownHosts(path)
	dialCfg := gaas.DialConfig{
		Service:          tb.Service.Name(),
		Verifier:         verifier,
		KnownHosts:       known,
		TLS:              gaas.InsecureClientTLS(),
		DialTimeout:      5 * time.Second,
		HandshakeTimeout: 5 * time.Second,
		CallTimeout:      10 * time.Second,
	}
	client, err := gaas.DialContext(context.Background(), ln.Addr().String(), dialCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("thermostat: remote glimmer attested over TLS, measurement pinned (%s)\n",
		client.Measurement())

	readings := glimmers.FromFloats([]float64{0.42, 0.43, 0.44, 0.45, 0.44, 0.43, 0.42, 0.41})
	sc, err := client.Contribute(1, readings, nil)
	if err != nil {
		log.Fatal(err)
	}
	ok := tb.Service.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature)
	fmt.Printf("thermostat: readings endorsed remotely, signature valid = %v\n", ok)

	// The endorsed contribution goes back through the host in one batch
	// frame and lands in the round's aggregation pipeline.
	accepted, rejected, err := client.SubmitBatch([][]byte{glimmers.EncodeSignedContribution(sc)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thermostat: batch submitted, accepted=%d rejected=%d; round 1 count = %d\n",
		accepted, rejected, rounds.Round(1).Count())

	// A compromised thermostat trying to report a 900-degree reading is
	// refused by the remote Glimmer.
	bogus := glimmers.FromFloats([]float64{900, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4})
	_, err = client.Contribute(2, bogus, nil)
	fmt.Printf("thermostat: bogus reading rejected remotely = %v\n", errors.Is(err, gaas.ErrRejected))

	// The TOFU pin doing its job: a device whose store pins a different
	// measurement for this service refuses the (genuine!) enclave before
	// any private data moves.
	stale := gaas.NewKnownHosts()
	_ = stale.Pin(tb.Service.Name(), glimmers.Measurement{0xBB})
	staleCfg := dialCfg
	staleCfg.KnownHosts = stale
	_, err = gaas.DialContext(context.Background(), ln.Addr().String(), staleCfg)
	fmt.Printf("thermostat with stale pin: refused swapped measurement = %v\n",
		errors.Is(err, gaas.ErrMeasurementMismatch))
}
