// GaaS: Glimmer-as-a-service (§4.2) — an IoT thermostat without a TEE uses
// a Glimmer hosted on another machine.
//
// The host (think: a set-top box, a university server, the EFF) runs
// glimmerd's server; the thermostat dials it, verifies the enclave quote
// against the published measurement, and only then ships its private
// readings for validation and endorsement. The host relays ciphertext and
// learns nothing.
//
// Run with: go run ./examples/gaas
package main

import (
	"errors"
	"fmt"
	"log"
	"net"

	"glimmers"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
)

func main() {
	const dim = 8 // eight temperature readings, each normalized to [0,1]

	// The service accepts normalized sensor vectors.
	tb, err := glimmers.NewTestbed("thermostats.example", predicate.UnitRangeCheck("sensor-range", dim))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := tb.Service.GlimmerConfig(dim, glimmers.ModeNone, glimmers.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}

	// The neutral host machine: loads and provisions a fresh Glimmer per
	// connection.
	server := gaas.NewServer(tb.Platform, cfg, func(dev *glimmer.Device) error {
		payload, err := tb.Service.BasePayload()
		if err != nil {
			return err
		}
		return tb.Service.Provision(dev, payload)
	})
	tb.Service.Vet(server.Measurement())

	// The host is also the ingest front door: batches of signed
	// contributions flow into the service's concurrent sharded pipeline.
	rounds := glimmers.NewRoundManager(glimmers.PipelineConfig{
		ServiceName: tb.Service.Name(),
		Verify:      tb.Service.ContributionVerifyKey(),
		Dim:         dim,
	})
	rounds.Vet(server.Measurement())
	server.SetIngest(rounds)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = server.Serve(ln) }()
	fmt.Printf("glimmer host serving on %s (measurement %s)\n", ln.Addr(), server.Measurement())

	// The IoT device: no TEE, but it pins the published measurement.
	verifier := &glimmers.QuoteVerifier{Root: tb.AS.Root()}
	verifier.Allow(server.Measurement())
	client, err := gaas.Dial(ln.Addr().String(), verifier, tb.Service.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Println("thermostat: remote glimmer attested, session established")

	readings := glimmers.FromFloats([]float64{0.42, 0.43, 0.44, 0.45, 0.44, 0.43, 0.42, 0.41})
	sc, err := client.Contribute(1, readings, nil)
	if err != nil {
		log.Fatal(err)
	}
	ok := tb.Service.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature)
	fmt.Printf("thermostat: readings endorsed remotely, signature valid = %v\n", ok)

	// The endorsed contribution goes back through the host in one batch
	// frame and lands in the round's aggregation pipeline.
	accepted, rejected, err := client.SubmitBatch([][]byte{glimmers.EncodeSignedContribution(sc)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thermostat: batch submitted, accepted=%d rejected=%d; round 1 count = %d\n",
		accepted, rejected, rounds.Round(1).Count())

	// A compromised thermostat trying to report a 900-degree reading is
	// refused by the remote Glimmer.
	bogus := glimmers.FromFloats([]float64{900, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4})
	_, err = client.Contribute(2, bogus, nil)
	fmt.Printf("thermostat: bogus reading rejected remotely = %v\n", errors.Is(err, gaas.ErrRejected))
}
