// Botdetect: the §4.1 scenario — bot detection with validation
// confidentiality.
//
// A web service wants to know "human or bot?" without receiving the
// privacy-laden behavioural signals (typing cadence, mouse paths, focus
// habits) its detector needs. The detector itself is confidential: it
// travels to the Glimmer inside the attested session, so neither the user
// nor the host ever sees its thresholds. The service receives exactly one
// audited bit per challenge.
//
// Run with: go run ./examples/botdetect
package main

import (
	"fmt"
	"log"

	"glimmers"
	"glimmers/internal/audit"
	"glimmers/internal/botdetect"
	"glimmers/internal/glimmer"
	"glimmers/internal/service"
	"glimmers/internal/xcrypto"
)

func main() {
	detector := botdetect.DefaultDetector
	tb, err := glimmers.NewTestbed("webservice.example", detector.Predicate("confidential-detector"))
	if err != nil {
		log.Fatal(err)
	}
	dev, err := tb.NewProvisionedDevice(1, glimmers.ModeNone, nil)
	if err != nil {
		log.Fatal(err)
	}
	gate := service.NewBotGate(tb.Service.Name(), tb.Service.ContributionVerifyKey())
	format := audit.VerdictFormat(tb.Service.Name())
	fmt.Printf("detector delivered confidentially; verdict format capacity: %d bit\n\n", format.CapacityBits())

	prg := xcrypto.NewPRG([]byte("sessions"))
	sessions := []struct {
		who   string
		trace botdetect.Trace
	}{
		{"alice (human)", botdetect.HumanTrace(prg, 300)},
		{"curl script (naive bot)", botdetect.BotTrace(prg, 300, 0)},
		{"headless browser (sophisticated bot)", botdetect.BotTrace(prg, 300, 0.9)},
	}
	for _, s := range sessions {
		challenge, err := gate.NewChallenge()
		if err != nil {
			log.Fatal(err)
		}
		// The raw trace stays on the device; only features enter the
		// enclave, and only one bit leaves it.
		verdict, err := dev.Detect(challenge, botdetect.Features(s.trace))
		if err != nil {
			log.Fatal(err)
		}
		raw := glimmer.EncodeVerdict(verdict)
		report, err := format.Check(raw, map[string][]byte{"challenge": verdict.Challenge})
		if err != nil {
			log.Fatalf("auditor rejected verdict: %v", err)
		}
		human, err := gate.CheckVerdict(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s -> human=%v (message carried %d bit, %d signature bytes)\n",
			s.who, human, report.InfoBits, report.SignatureBytes)
	}
}
