// Quickstart: the smallest complete Glimmer deployment.
//
// It assembles a testbed (attestation root, platform, service), provisions
// one Glimmer with a [0,1] range-check predicate, pushes an honest and a
// malicious contribution through it, and verifies the signed result the
// way the service would.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"glimmers"
	"glimmers/internal/glimmer"
)

func main() {
	const dim = 4

	// 1. A testbed: attestation service, one client platform, one cloud
	//    service that wants weights in [0, 1].
	tb, err := glimmers.NewTestbed("quickstart.example", glimmers.UnitRangeCheck("unit-range", dim))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load and provision a Glimmer on the client platform. The testbed
	//    vets the measurement and runs the attested provisioning protocol.
	dev, err := tb.NewProvisionedDevice(dim, glimmers.ModeNone, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("glimmer measurement: %s\n", dev.Measurement())

	// 3. An honest contribution is validated, signed, and endorsed.
	honest := glimmers.FromFloats([]float64{0.1, 0.9, 0.5, 0.0})
	sc, err := dev.Contribute(1, honest, nil)
	if err != nil {
		log.Fatal(err)
	}
	ok := tb.Service.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature)
	fmt.Printf("honest contribution: signed=%v round=%d\n", ok, sc.Round)

	// 4. The paper's 538 attack is refused inside the enclave; the value
	//    never leaves the device.
	malicious := glimmers.FromFloats([]float64{0.1, 538, 0.5, 0.0})
	_, err = dev.Contribute(2, malicious, nil)
	fmt.Printf("malicious contribution rejected: %v\n", errors.Is(err, glimmer.ErrRejected))

	// 5. The service aggregates only endorsed contributions.
	agg := glimmers.NewPipeline(glimmers.PipelineConfig{
		ServiceName: tb.Service.Name(),
		Verify:      tb.Service.ContributionVerifyKey(),
		Dim:         dim,
		Round:       1,
		Workers:     1,
		Shards:      1,
	})
	agg.Vet(dev.Measurement())
	if err := agg.Add(glimmers.EncodeSignedContribution(sc)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregator accepted %d contribution(s); sum[1] = %s\n", agg.Count(), agg.Sum()[1])
}
