// Keyboard: the paper's Figure 1 progression as one runnable story.
//
// A population of users types on simulated keyboards while a trend
// ("donald" → "trump") sweeps through. The example walks the four panels of
// Figure 1 — raw sharing, federated learning, secure aggregation, the
// poisoning attack — and then adds the Glimmer defense.
//
// Run with: go run ./examples/keyboard
package main

import (
	"errors"
	"fmt"
	"log"

	"glimmers"
	"glimmers/internal/blind"
	"glimmers/internal/fedml"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/keyboard"
)

func main() {
	const (
		users = 16
		words = 400
		round = 1
	)
	pop, err := keyboard.TrendingScenario([]byte("example"), users, words)
	if err != nil {
		log.Fatal(err)
	}
	vocab := pop.Corpus.Vocabulary()
	fmt.Printf("Fig 1a — raw sharing: the service would see every keystroke.\n")
	fmt.Printf("  user-000's first bigrams are fully visible; privacy loss is total.\n\n")

	// Fig 1b: federated learning — only models are shared...
	models := make([]*fedml.Model, users)
	for i, u := range pop.Users {
		models[i] = fedml.TrainLocal(u.Activity, vocab)
	}
	global, err := fedml.Aggregate(models...)
	if err != nil {
		log.Fatal(err)
	}
	next, _, err := global.Predict("donald")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 1b — federated learning: global model suggests %q after \"donald\".\n", next)
	truth := pop.Users[0].Activity.DistinctBigrams(vocab)
	recall := fedml.InversionRecall(fedml.InvertModel(models[0], vocab.Dims()), truth)
	fmt.Printf("  ...but inverting user-000's local model recovers %.0f%% of their typed bigrams.\n\n", recall*100)

	// Fig 1c: secure aggregation hides individual models.
	masks, err := blind.ZeroSumMasks([]byte("example-round"), users, vocab.Dims())
	if err != nil {
		log.Fatal(err)
	}
	blindSum := fixed.NewVector(vocab.Dims())
	for i, m := range models {
		b, err := blind.Apply(m.Weights, masks[i])
		if err != nil {
			log.Fatal(err)
		}
		blindSum.AddInPlace(b)
	}
	clearSum := fixed.NewVector(vocab.Dims())
	for _, m := range models {
		clearSum.AddInPlace(m.Weights)
	}
	exact := true
	for d := range clearSum {
		if clearSum[d] != blindSum[d] {
			exact = false
		}
	}
	fmt.Printf("Fig 1c — secure aggregation: blinded aggregate exact = %v; individuals look random.\n\n", exact)

	// Fig 1d: under blinding, a poisoner is invisible.
	if err := fedml.Poison(models[0], "donald", "dont", 538); err != nil {
		log.Fatal(err)
	}
	poisoned, err := fedml.Aggregate(models...)
	if err != nil {
		log.Fatal(err)
	}
	skew, err := fedml.MeasureSkew(global, poisoned, "donald", "dont")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 1d — poisoning: user-000 submits 538; suggestion flips to %q (aggregate weight %.1f).\n",
		skew.PoisonedTop, skew.PoisonedW)
	fmt.Printf("  The service cannot range-check blinded values; the attack is undetectable server-side.\n\n")

	// Fig 2/3: the Glimmer defense.
	tb, err := glimmers.NewTestbed("nextwordpredictive.com", glimmers.UnitRangeCheck("unit-range", vocab.Dims()))
	if err != nil {
		log.Fatal(err)
	}
	agg := glimmers.NewPipeline(glimmers.PipelineConfig{
		ServiceName: tb.Service.Name(),
		Verify:      tb.Service.ContributionVerifyKey(),
		Dim:         vocab.Dims(),
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
	rejected := 0
	unused := fixed.NewVector(vocab.Dims())
	for i, m := range models {
		dev, err := tb.NewProvisionedDevice(vocab.Dims(), glimmers.ModeDealer,
			map[uint64][]uint64{round: glimmers.VectorToBits(masks[i])})
		if err != nil {
			log.Fatal(err)
		}
		agg.Vet(dev.Measurement())
		sc, err := dev.Contribute(round, m.Weights, nil)
		if err != nil {
			if errors.Is(err, glimmer.ErrRejected) {
				rejected++
				unused.AddInPlace(masks[i])
				continue
			}
			log.Fatal(err)
		}
		if err := agg.Add(glimmers.EncodeSignedContribution(sc)); err != nil {
			log.Fatal(err)
		}
	}
	if err := agg.CorrectDropout(unused); err != nil {
		log.Fatal(err)
	}
	mean, err := agg.Mean()
	if err != nil {
		log.Fatal(err)
	}
	defended, err := fedml.FromWeights(vocab, mean)
	if err != nil {
		log.Fatal(err)
	}
	top, _, err := defended.Predict("donald")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 2/3 — with Glimmers: %d/%d contributions rejected at the client;\n", rejected, users)
	fmt.Printf("  global model still suggests %q after \"donald\".\n", top)
}
