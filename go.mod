module glimmers

go 1.24
