package glimmers_test

import (
	"errors"
	"testing"

	"glimmers"
	"glimmers/internal/glimmer"
)

// serialPipeline is the strictly serial aggregation baseline (one worker,
// one shard) the facade tests collect into.
func serialPipeline(tb *glimmers.Testbed, dim int, round uint64) *glimmers.Pipeline {
	return glimmers.NewPipeline(glimmers.PipelineConfig{
		ServiceName: tb.Service.Name(),
		Verify:      tb.Service.ContributionVerifyKey(),
		Dim:         dim,
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
}

// TestFacadeQuickstart exercises the public API the way the quickstart
// example does: testbed, provisioned device, contribute, verify, aggregate.
func TestFacadeQuickstart(t *testing.T) {
	const dim = 4
	tb, err := glimmers.NewTestbed("facade.example", glimmers.UnitRangeCheck("range", dim))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := tb.NewProvisionedDevice(dim, glimmers.ModeNone, nil)
	if err != nil {
		t.Fatal(err)
	}
	honest := glimmers.FromFloats([]float64{0.1, 0.9, 0.5, 0.0})
	sc, err := dev.Contribute(1, honest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Service.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature) {
		t.Fatal("signature invalid through facade")
	}
	agg := serialPipeline(tb, dim, 1)
	agg.Vet(dev.Measurement())
	if err := agg.Add(glimmers.EncodeSignedContribution(sc)); err != nil {
		t.Fatal(err)
	}
	if agg.Count() != 1 {
		t.Fatalf("count = %d", agg.Count())
	}
	// The 538 attack through the facade.
	if _, err := dev.Contribute(2, glimmers.FromFloats([]float64{538, 0, 0, 0}), nil); !errors.Is(err, glimmer.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

// TestFacadeDealerMode exercises dealer blinding through the facade.
func TestFacadeDealerMode(t *testing.T) {
	const dim, n = 3, 4
	tb, err := glimmers.NewTestbed("dealer.example", glimmers.UnitRangeCheck("range", dim))
	if err != nil {
		t.Fatal(err)
	}
	masks, err := glimmers.ZeroSumMasks([]byte("facade"), n, dim)
	if err != nil {
		t.Fatal(err)
	}
	agg := serialPipeline(tb, dim, 1)
	var want glimmers.Vector = make([]glimmers.Ring, dim)
	for i := 0; i < n; i++ {
		dev, err := tb.NewProvisionedDevice(dim, glimmers.ModeDealer,
			map[uint64][]uint64{1: glimmers.VectorToBits(masks[i])})
		if err != nil {
			t.Fatal(err)
		}
		agg.Vet(dev.Measurement())
		c := glimmers.FromFloats([]float64{0.25, 0.5, 0.75})
		for d := range want {
			want[d] += c[d]
		}
		sc, err := dev.Contribute(1, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(glimmers.EncodeSignedContribution(sc)); err != nil {
			t.Fatal(err)
		}
	}
	got := agg.Sum()
	for d := range want {
		if got[d] != want[d] {
			t.Fatalf("aggregate mismatch at %d", d)
		}
	}
}
